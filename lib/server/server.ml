(** The [gofreec serve] daemon: a Unix-domain socket listener that keeps
    compilation and build results resident across requests.

    Threading model:
    - the {e accept} loop runs in {!serve}'s caller (or a background
      thread via {!start});
    - each connection gets a lightweight {e reader thread} that frames
      request lines, decodes them, and feeds the shared bounded
      {!Pool}, keyed by connection so the pool drains round-robin
      across clients — one pipelining client cannot starve the rest;
    - a fixed pool of {e worker domains} executes the requests (the
      parallelism follows "Retrofitting Parallelism onto OCaml", like
      the build driver's analysis waves) and writes each response back
      under the connection's write mutex, so responses never interleave
      mid-line even when one client pipelines requests.

    Overload behavior (admission control):
    - past the shed high-watermark the daemon answers [overloaded]
      immediately instead of blocking the reader — per-request work
      stays bounded and the client decides whether to back off or
      retry (graceful degradation rather than unbounded queueing);
    - a request still {e queued} past its deadline ([deadline_ms]
      param, or the server-wide default) gets a [timed_out] response
      when it reaches a worker; running requests are never interrupted;
    - queued work whose client has disconnected is cancelled — the
      worker skips it (counted, no response owed).

    Failure containment, per the protocol contract:
    - a malformed line gets a [bad_request] error response and the
      connection keeps serving;
    - a client that disconnects mid-request only loses its own
      response (the write fails, the result is dropped, the daemon
      lives on);
    - [shutdown] stops intake, {e drains} queued and in-flight work so
      every accepted request is answered, then closes.

    The invariant all three overload paths preserve: {e one response
    per request} on a live connection — shed and timeout produce error
    {e responses} with the request's id echoed, never silence, so a
    pipelining client's id bookkeeping survives overload. *)

module Json = Gofree_obs.Json
module Trace = Gofree_obs.Trace
module Ring = Gofree_obs.Ring
module Stats = Gofree_stats.Stats
module Pool = Gofree_sched.Pool

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;  (** guards writes and the fields below *)
  mutable c_alive : bool;  (** false once a write failed *)
  mutable c_pending : int;  (** requests submitted, response not written *)
  mutable c_eof : bool;  (** reader saw EOF; close once pending drains *)
  mutable c_closed : bool;
  mutable c_served : int;  (** responses written to this client *)
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  pool : Pool.t;
  shed_watermark : int;  (** queue depth past which requests shed *)
  default_deadline_ms : int;  (** 0 = no server-wide deadline *)
  cache : Cache.t;
  stopping : bool Atomic.t;
  t0 : float;
  (* ---- counters (under st_mutex) ---- *)
  st_mutex : Mutex.t;
  mutable served : int;  (** responses written, errors included *)
  mutable errored : int;  (** error responses among them *)
  mutable malformed : int;  (** undecodable request lines *)
  mutable dropped : int;  (** responses lost to dead connections *)
  mutable shed : int;  (** requests refused with [overloaded] *)
  mutable timed_out : int;  (** queued past deadline, answered [timed_out] *)
  mutable cancelled : int;  (** queued work skipped: client disconnected *)
  by_method : (string, int) Hashtbl.t;
  latencies : float Ring.t;  (** ms, receipt → response, pooled requests *)
  mutable conns : conn list;
  mutable conns_total : int;
  mutable threads : Thread.t list;
  mutable serve_thread : Thread.t option;
}

let now_ms () = Unix.gettimeofday () *. 1000.

(* ---------------------------------------------------------------- *)
(* Lifecycle                                                         *)
(* ---------------------------------------------------------------- *)

let create ?(workers = 0) ?(queue_capacity = 64) ?shed_watermark
    ?(default_deadline_ms = 0) ~socket () : t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists socket then begin
    match (Unix.lstat socket).Unix.st_kind with
    | Unix.S_SOCK -> Unix.unlink socket  (* stale socket of a dead server *)
    | _ ->
      invalid_arg
        (Printf.sprintf "Server.create: %s exists and is not a socket"
           socket)
  end;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let queue_capacity = max 1 queue_capacity in
  {
    socket_path = socket;
    listen_fd;
    pool = Pool.create ~workers ~capacity:queue_capacity ();
    shed_watermark =
      (match shed_watermark with
      | Some w -> min (max 1 w) queue_capacity
      | None -> queue_capacity);
    default_deadline_ms = max 0 default_deadline_ms;
    cache = Cache.create ();
    stopping = Atomic.make false;
    t0 = now_ms ();
    st_mutex = Mutex.create ();
    served = 0;
    errored = 0;
    malformed = 0;
    dropped = 0;
    shed = 0;
    timed_out = 0;
    cancelled = 0;
    by_method = Hashtbl.create 8;
    latencies = Ring.create ~capacity:1024;
    conns = [];
    conns_total = 0;
    threads = [];
    serve_thread = None;
  }

(* Wake the accept loop after [stopping] flips: a throwaway connection
   to our own socket makes the blocking accept return. *)
let wake_accept (t : t) =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(** Ask the server to stop: intake ends, queued and in-flight requests
    are still answered, then sockets close.  Safe from any thread. *)
let request_shutdown (t : t) : unit =
  if Atomic.compare_and_set t.stopping false true then wake_accept t

(* ---------------------------------------------------------------- *)
(* Connection bookkeeping                                            *)
(* ---------------------------------------------------------------- *)

let close_locked (c : conn) =
  if not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* The fd closes only when the reader is done AND no response is still
   owed — otherwise a freshly accepted connection could reuse the fd
   number and receive a stale response. *)
let conn_done_one (c : conn) =
  Mutex.lock c.c_wmutex;
  c.c_pending <- c.c_pending - 1;
  if c.c_eof && c.c_pending = 0 then close_locked c;
  Mutex.unlock c.c_wmutex

let conn_reader_done (t : t) (c : conn) =
  Mutex.lock c.c_wmutex;
  c.c_eof <- true;
  if c.c_pending = 0 then close_locked c;
  Mutex.unlock c.c_wmutex;
  Mutex.lock t.st_mutex;
  t.conns <- List.filter (fun c' -> c'.c_id <> c.c_id) t.conns;
  Mutex.unlock t.st_mutex

(** Write one response line; [false] (and counted) when the client is
    gone.  A dead connection swallows all later responses too. *)
let send (t : t) (c : conn) (j : Json.t) : bool =
  Mutex.lock c.c_wmutex;
  let ok =
    c.c_alive && not c.c_closed
    &&
    match Rpc.write_line c.c_fd j with
    | () -> true
    | exception Unix.Unix_error _ ->
      c.c_alive <- false;
      false
  in
  if ok then c.c_served <- c.c_served + 1;
  Mutex.unlock c.c_wmutex;
  Mutex.lock t.st_mutex;
  if ok then t.served <- t.served + 1 else t.dropped <- t.dropped + 1;
  Mutex.unlock t.st_mutex;
  ok

let count_method (t : t) name =
  Mutex.lock t.st_mutex;
  Hashtbl.replace t.by_method name
    (1 + Option.value (Hashtbl.find_opt t.by_method name) ~default:0);
  Mutex.unlock t.st_mutex

let count_error (t : t) =
  Mutex.lock t.st_mutex;
  t.errored <- t.errored + 1;
  Mutex.unlock t.st_mutex

let count_shed (t : t) =
  Mutex.lock t.st_mutex;
  t.shed <- t.shed + 1;
  Mutex.unlock t.st_mutex;
  Trace.instant ~tid:(Trace.domain_tid ()) "rpc:shed"

let count_timed_out (t : t) =
  Mutex.lock t.st_mutex;
  t.timed_out <- t.timed_out + 1;
  Mutex.unlock t.st_mutex;
  Trace.instant ~tid:(Trace.domain_tid ()) "rpc:timed_out"

let count_cancelled (t : t) =
  Mutex.lock t.st_mutex;
  t.cancelled <- t.cancelled + 1;
  Mutex.unlock t.st_mutex;
  Trace.instant ~tid:(Trace.domain_tid ()) "rpc:cancelled"

(* A connection whose reader saw EOF (or whose last write failed) owes
   nothing: queued work for it is cancelled instead of executed. *)
let conn_gone (c : conn) =
  Mutex.lock c.c_wmutex;
  let gone = (not c.c_alive) || c.c_closed || c.c_eof in
  Mutex.unlock c.c_wmutex;
  gone

(* ---------------------------------------------------------------- *)
(* Request handlers                                                  *)
(* ---------------------------------------------------------------- *)

let insertion_json (i : Gofree_api.insertion) : Json.t =
  Json.Obj
    [
      ("function", Json.Str i.Gofree_api.ins_function);
      ("variable", Json.Str i.Gofree_api.ins_variable);
      ("kind", Json.Str (Gofree_api.free_kind_name i.Gofree_api.ins_kind));
    ]

let outcome_json ~cached (o : Gofree_api.run_outcome) : Json.t =
  Json.Obj
    [
      ("output", Json.Str o.Gofree_api.output);
      ("panicked", Json.Bool o.Gofree_api.panicked);
      ("steps", Json.Int o.Gofree_api.steps);
      ("wall_ns", Json.Int (Int64.to_int o.Gofree_api.wall_ns));
      ("cached", Json.Bool cached);
      ("metrics", o.Gofree_api.metrics_json);
    ]

let source_of_src : Rpc.src -> (string, Gofree_api.error) result = function
  | Rpc.Inline s -> Ok s
  | Rpc.File f -> begin
    match Gofree_api.read_file f with
    | s -> Ok s
    | exception Sys_error m -> Error (Gofree_api.Compile_error m)
  end

let cached_compilation (t : t) ~preset src =
  match source_of_src src with
  | Error e -> Error e
  | Ok source ->
    Cache.compilation t.cache
      ~config:(Gofree_api.config_of_preset preset)
      source

let stats_json (t : t) : Json.t =
  let hits, misses = Cache.counts t.cache in
  Mutex.lock t.st_mutex;
  let served = t.served and errored = t.errored in
  let malformed = t.malformed and dropped = t.dropped in
  let shed = t.shed and timed_out = t.timed_out in
  let cancelled = t.cancelled in
  let active = List.length t.conns and total = t.conns_total in
  let clients =
    List.rev_map
      (fun c ->
        Mutex.lock c.c_wmutex;
        let served = c.c_served and pending = c.c_pending in
        Mutex.unlock c.c_wmutex;
        Json.Obj
          [
            ("id", Json.Int c.c_id);
            ("served", Json.Int served);
            ("pending", Json.Int pending);
          ])
      t.conns
  in
  let by_method =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) t.by_method []
    |> List.sort compare
  in
  let lats = Array.of_list (Ring.to_list t.latencies) in
  Mutex.unlock t.st_mutex;
  let latency =
    if Array.length lats = 0 then []
    else begin
      match Stats.percentile_many [ 50.0; 95.0; 99.0 ] lats with
      | [ (_, p50); (_, p95); (_, p99) ] ->
        let _, max_ms = Stats.min_max lats in
        [
          ("count", Json.Int (Array.length lats));
          ("p50_ms", Json.Float p50);
          ("p95_ms", Json.Float p95);
          ("p99_ms", Json.Float p99);
          ("max_ms", Json.Float max_ms);
        ]
      | _ -> assert false
    end
  in
  Json.Obj
    [
      ("api_version", Json.Int Gofree_api.api_version);
      ("uptime_ms", Json.Float (now_ms () -. t.t0));
      ( "requests",
        Json.Obj
          [
            ("served", Json.Int served);
            ("errors", Json.Int errored);
            ("malformed", Json.Int malformed);
            ("dropped_responses", Json.Int dropped);
            ("shed", Json.Int shed);
            ("timed_out", Json.Int timed_out);
            ("cancelled", Json.Int cancelled);
            ("by_method", Json.Obj by_method);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ( "hit_ratio",
              Json.Float
                (if hits + misses = 0 then 0.0
                 else float_of_int hits /. float_of_int (hits + misses)) );
          ] );
      ( "unit_cache",
        let uh, um = Cache.unit_counts t.cache in
        Json.Obj
          [ ("hits", Json.Int uh); ("misses", Json.Int um) ] );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Pool.queue_depth t.pool));
            ("high_watermark", Json.Int (Pool.max_queue_depth t.pool));
            ("capacity", Json.Int (Pool.capacity t.pool));
            ("shed_watermark", Json.Int t.shed_watermark);
            ("workers", Json.Int (Pool.size t.pool));
          ] );
      ( "connections",
        Json.Obj
          [
            ("active", Json.Int active);
            ("total", Json.Int total);
            ("clients", Json.List clients);
          ] );
      ("latency_ms", Json.Obj latency);
    ]

(** Execute one decoded request; [Error (code, message)] becomes an
    error response. *)
let handle (t : t) (r : Rpc.request) : (Json.t, string * string) result =
  let api e = (Rpc.error_code e, Gofree_api.error_message e) in
  match r with
  | Rpc.Stats -> Ok (stats_json t)
  | Rpc.Shutdown ->
    request_shutdown t;
    Ok (Json.Obj [ ("stopping", Json.Bool true) ])
  | Rpc.Analyze { src; preset; explain } -> begin
    match cached_compilation t ~preset src with
    | Error e -> Error (api e)
    | Ok (c, cached) ->
      Ok
        (Json.Obj
           ([
              ( "functions",
                Json.List
                  (List.map
                     (fun f -> Json.Str f)
                     (Gofree_api.function_names c)) );
              ( "insertions",
                Json.List
                  (List.map insertion_json (Gofree_api.insertions c)) );
              ("cached", Json.Bool cached);
            ]
           @
           if explain then
             [ ("explain",
                Gofree_api.explain_to_json (Gofree_api.explain c)) ]
           else []))
  end
  | Rpc.Explain { src; preset } -> begin
    match cached_compilation t ~preset src with
    | Error e -> Error (api e)
    | Ok (c, cached) ->
      Ok
        (Json.Obj
           [
             ("cached", Json.Bool cached);
             ("explain",
              Gofree_api.explain_to_json (Gofree_api.explain c));
           ])
  end
  | Rpc.Run { src; preset; options } -> begin
    match cached_compilation t ~preset src with
    | Error e -> Error (api e)
    | Ok (c, cached) -> begin
      match Gofree_api.run_compilation ~options c with
      | Error e -> Error (api e)
      | Ok o -> Ok (outcome_json ~cached o)
    end
  end
  | Rpc.Build { dir; preset; force; jobs; run; cache_dir; options } ->
  begin
    let config = Gofree_api.config_of_preset preset in
    match Cache.build t.cache ~config ?cache_dir ~jobs ~force dir with
    | Error e -> Error (api e)
    | Ok (b, resident) -> begin
      let packages, store_hits = Gofree_api.build_cache_counts b in
      let unit_hits, units_analyzed = Gofree_api.build_unit_counts b in
      let base =
        [
          ("resident_cache", Json.Str (if resident then "hit" else "miss"));
          ("packages", Json.Int packages);
          ("store_hits", Json.Int store_hits);
          ("unit_hits", Json.Int unit_hits);
          ("units_analyzed", Json.Int units_analyzed);
          ("stats", Gofree_api.build_stats_to_json
             (Gofree_api.build_stats b));
          ( "insertions",
            Json.List
              (List.map insertion_json (Gofree_api.build_insertions b)) );
        ]
      in
      if not run then Ok (Json.Obj base)
      else begin
        match Gofree_api.run_build ~options b with
        | Error e -> Error (api e)
        | Ok o ->
          Ok (Json.Obj (base @ [ ("run", outcome_json ~cached:resident o) ]))
      end
    end
  end

(* ---------------------------------------------------------------- *)
(* Per-connection reader                                             *)
(* ---------------------------------------------------------------- *)

let respond (t : t) (c : conn) ~id (outcome : (Json.t, string * string) result)
    =
  let response =
    match outcome with
    | Ok result -> Rpc.response_ok ~id result
    | Error (code, message) ->
      count_error t;
      Rpc.response_error ~id ~code message
  in
  ignore (send t c response)

let record_latency (t : t) t_recv =
  Mutex.lock t.st_mutex;
  Ring.push t.latencies (now_ms () -. t_recv);
  Mutex.unlock t.st_mutex

let reader_loop (t : t) (c : conn) =
  let rd = Rpc.reader c.c_fd in
  let rec loop () =
    match Rpc.read_line rd with
    | None -> ()
    | Some line ->
      let t_recv = now_ms () in
      (match Rpc.decode line with
      | Error (id, message) ->
        Mutex.lock t.st_mutex;
        t.malformed <- t.malformed + 1;
        Mutex.unlock t.st_mutex;
        respond t c ~id (Error ("bad_request", message))
      | Ok { Rpc.rq_id = id; rq_request; rq_deadline_ms } -> begin
        count_method t (Rpc.method_name rq_request);
        match rq_request with
        | Rpc.Stats | Rpc.Shutdown ->
          (* cheap and latency-sensitive: answered on the reader
             thread, ahead of any queue *)
          respond t c ~id (handle t rq_request)
        | _ ->
          let deadline_ms =
            match rq_deadline_ms with
            | Some d -> d
            | None -> t.default_deadline_ms
          in
          Mutex.lock c.c_wmutex;
          c.c_pending <- c.c_pending + 1;
          Mutex.unlock c.c_wmutex;
          let job () =
            (* decided at dequeue time, so queued work is never
               executed for a dead client or past its deadline *)
            if conn_gone c then count_cancelled t
            else if deadline_ms > 0 && now_ms () -. t_recv > float_of_int deadline_ms
            then begin
              count_timed_out t;
              respond t c ~id
                (Error
                   ( "timed_out",
                     Printf.sprintf
                       "request exceeded its %dms deadline while queued"
                       deadline_ms ));
              record_latency t t_recv
            end
            else begin
              (match
                 Trace.with_span ~tid:(Trace.domain_tid ())
                   ("rpc:" ^ Rpc.method_name rq_request)
                   (fun () -> handle t rq_request)
               with
              | outcome -> respond t c ~id outcome
              | exception e ->
                respond t c ~id
                  (Error ("internal_error", Printexc.to_string e)));
              record_latency t t_recv
            end;
            conn_done_one c
          in
          (* admission control: keyed by connection (round-robin
             fairness); past the watermark shed rather than block *)
          match
            Pool.try_submit ~key:c.c_id ~watermark:t.shed_watermark t.pool
              job
          with
          | `Accepted -> ()
          | `Full ->
            count_shed t;
            respond t c ~id
              (Error
                 ( "overloaded",
                   Printf.sprintf
                     "queue at high-watermark (%d); request shed"
                     t.shed_watermark ));
            conn_done_one c
          | `Stopping ->
            respond t c ~id
              (Error ("shutting_down", "server is shutting down"));
            conn_done_one c
      end);
      if not (Atomic.get t.stopping) then loop ()
  in
  (try loop () with _ -> ());
  conn_reader_done t c

(* ---------------------------------------------------------------- *)
(* Accept loop                                                       *)
(* ---------------------------------------------------------------- *)

(** Serve until a [shutdown] request (or {!request_shutdown}) arrives:
    accepts connections, drains outstanding work, closes everything,
    removes the socket file. *)
let serve (t : t) : unit =
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()  (* listener closed under us *)
      | fd, _ ->
        if Atomic.get t.stopping then
          try Unix.close fd with Unix.Unix_error _ -> ()
        else begin
          let c =
            {
              c_id = t.conns_total;
              c_fd = fd;
              c_wmutex = Mutex.create ();
              c_alive = true;
              c_pending = 0;
              c_eof = false;
              c_closed = false;
              c_served = 0;
            }
          in
          Mutex.lock t.st_mutex;
          t.conns_total <- t.conns_total + 1;
          t.conns <- c :: t.conns;
          Mutex.unlock t.st_mutex;
          let th = Thread.create (fun () -> reader_loop t c) () in
          Mutex.lock t.st_mutex;
          t.threads <- th :: t.threads;
          Mutex.unlock t.st_mutex;
          accept_loop ()
        end
    end
  in
  accept_loop ();
  (* intake over: answer everything already accepted ... *)
  Pool.shutdown t.pool;
  (* ... then unblock readers still waiting for request lines *)
  Mutex.lock t.st_mutex;
  let conns = t.conns and threads = t.threads in
  Mutex.unlock t.st_mutex;
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join threads;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

(** {!create} + {!serve} on a background thread — the in-process form
    the tests and benches use.  {!wait} joins it. *)
let start ?workers ?queue_capacity ?shed_watermark ?default_deadline_ms
    ~socket () : t =
  let t =
    create ?workers ?queue_capacity ?shed_watermark ?default_deadline_ms
      ~socket ()
  in
  t.serve_thread <- Some (Thread.create (fun () -> serve t) ());
  t

let wait (t : t) : unit =
  match t.serve_thread with Some th -> Thread.join th | None -> ()

(** {!request_shutdown} + {!wait}. *)
let stop (t : t) : unit =
  request_shutdown t;
  wait t
