(** The daemon's process-resident result cache — what makes a warm
    request cheap.

    Two content-hash keyed tables live for the life of the server
    process:
    - compilations of single sources (key: source bytes + config), so a
      repeated [analyze]/[run]/[explain] of unchanged input skips
      parsing, typechecking, escape analysis and instrumentation;
    - linked multi-package builds (key: every source file's bytes under
      the tree + config), so a warm [build] of an unchanged tree skips
      {e everything} — loading, typechecking, analysis and linking.

    The build table layers over the on-disk [Build.Store]: a resident
    miss still goes through the driver, whose per-package summary store
    turns a cold daemon start on a previously-built tree into cheap
    replay; the resident hit then short-circuits even that on the next
    request.  Values are immutable once published (programs are
    instrumented in place {e before} insertion, and running one never
    mutates it), so worker domains share them freely; the mutex guards
    the tables only — no lock is held while compiling, and two racing
    misses on one key just do the work twice with identical results. *)

type t = {
  mutex : Mutex.t;
  compilations : (string, Gofree_api.compilation) Hashtbl.t;
  builds : (string, Gofree_api.build) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () : t =
  {
    mutex = Mutex.create ();
    compilations = Hashtbl.create 64;
    builds = Hashtbl.create 16;
    hits = 0;
    misses = 0;
  }

(** (hits, misses) over both tables since the server started. *)
let counts (t : t) : int * int =
  Mutex.lock t.mutex;
  let c = (t.hits, t.misses) in
  Mutex.unlock t.mutex;
  c

let find tbl (t : t) key =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt tbl key in
  (match v with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  Mutex.unlock t.mutex;
  v

let publish tbl (t : t) key v =
  Mutex.lock t.mutex;
  Hashtbl.replace tbl key v;
  Mutex.unlock t.mutex

(** Compile [source] under [config], or return the resident result.
    The [bool] is true on a resident hit. *)
let compilation (t : t) ~(config : Gofree_api.config) (source : string) :
    (Gofree_api.compilation * bool, Gofree_api.error) result =
  let key = Gofree_api.source_key ~config source in
  match find t.compilations t key with
  | Some c -> Ok (c, true)
  | None -> begin
    match Gofree_api.compile_string ~config source with
    | Error e -> Error e
    | Ok c ->
      publish t.compilations t key c;
      Ok (c, false)
  end

(** Build the tree at [dir], or return the resident linked result.
    [force] bypasses (and refreshes) both this cache and the on-disk
    summary store. *)
let build (t : t) ~(config : Gofree_api.config) ?cache_dir ~jobs ~force
    (dir : string) : (Gofree_api.build * bool, Gofree_api.error) result =
  match Gofree_api.tree_key ~config dir with
  | Error e -> Error e
  | Ok key -> begin
    match if force then None else find t.builds t key with
    | Some b -> Ok (b, true)
    | None -> begin
      match Gofree_api.build_dir ~config ?cache_dir ~jobs ~force dir with
      | Error e -> Error e
      | Ok b ->
        publish t.builds t key b;
        Ok (b, false)
    end
  end
