(** The daemon's process-resident result cache — what makes a warm
    request cheap.

    Two content-hash keyed tables live for the life of the server
    process:
    - compilations of single sources (key: source bytes + config), so a
      repeated [analyze]/[run]/[explain] of unchanged input skips
      parsing, typechecking, escape analysis and instrumentation;
    - linked multi-package builds (key: every source file's bytes under
      the tree + config), so a warm [build] of an unchanged tree skips
      {e everything} — loading, typechecking, analysis and linking.

    The build table layers over the on-disk [Build.Store]: a resident
    miss still goes through the driver, whose per-package summary store
    turns a cold daemon start on a previously-built tree into cheap
    replay; the resident hit then short-circuits even that on the next
    request.  Values are immutable once published (programs are
    instrumented in place {e before} insertion, and running one never
    mutates it), so worker domains share them freely; the mutex guards
    the tables only — no lock is held while compiling, and two racing
    misses on one key just do the work twice with identical results. *)

module Driver = Gofree_build.Driver
module Store = Gofree_build.Store

type t = {
  mutex : Mutex.t;
  compilations : (string, Gofree_api.compilation) Hashtbl.t;
  builds : (string, Gofree_api.build) Hashtbl.t;
  units : (string, Store.unit_record) Hashtbl.t;
      (** resident analysis-unit records, keyed [pkg ^ "\000" ^ unit key]
          — content-addressed, so sharing across trees is sound *)
  mutable hits : int;
  mutable misses : int;
  mutable unit_hits : int;  (** units replayed, across all builds served *)
  mutable unit_misses : int;  (** units analyzed, across all builds served *)
}

let create () : t =
  {
    mutex = Mutex.create ();
    compilations = Hashtbl.create 64;
    builds = Hashtbl.create 16;
    units = Hashtbl.create 256;
    hits = 0;
    misses = 0;
    unit_hits = 0;
    unit_misses = 0;
  }

(** (hits, misses) over both tables since the server started. *)
let counts (t : t) : int * int =
  Mutex.lock t.mutex;
  let c = (t.hits, t.misses) in
  Mutex.unlock t.mutex;
  c

(** Cumulative unit-cache traffic of the builds served: (units replayed
    from a cache level, units actually analyzed). *)
let unit_counts (t : t) : int * int =
  Mutex.lock t.mutex;
  let c = (t.unit_hits, t.unit_misses) in
  Mutex.unlock t.mutex;
  c

let find tbl (t : t) key =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt tbl key in
  (match v with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  Mutex.unlock t.mutex;
  v

let publish tbl (t : t) key v =
  Mutex.lock t.mutex;
  Hashtbl.replace tbl key v;
  Mutex.unlock t.mutex

(** Compile [source] under [config], or return the resident result.
    The [bool] is true on a resident hit. *)
let compilation (t : t) ~(config : Gofree_api.config) (source : string) :
    (Gofree_api.compilation * bool, Gofree_api.error) result =
  let key = Gofree_api.source_key ~config source in
  match find t.compilations t key with
  | Some c -> Ok (c, true)
  | None -> begin
    match Gofree_api.compile_string ~config source with
    | Error e -> Error e
    | Ok c ->
      publish t.compilations t key c;
      Ok (c, false)
  end

(** The daemon's two-level unit cache: the resident table first, the
    tree's on-disk [.units] files behind it (disk hits are promoted to
    resident, commits write through to both).  A warm daemon therefore
    replays unchanged units without touching disk, and a cold daemon
    start still inherits the previous process's records. *)
let unit_cache (t : t) ~(disk : Driver.unit_cache) : Driver.unit_cache =
  let rkey pkg key = pkg ^ "\000" ^ key in
  {
    Driver.uc_lookup =
      (fun ~pkg ~key ->
        Mutex.lock t.mutex;
        let resident = Hashtbl.find_opt t.units (rkey pkg key) in
        Mutex.unlock t.mutex;
        match resident with
        | Some _ -> resident
        | None -> begin
          match disk.Driver.uc_lookup ~pkg ~key with
          | Some r ->
            Mutex.lock t.mutex;
            Hashtbl.replace t.units (rkey pkg key) r;
            Mutex.unlock t.mutex;
            Some r
          | None -> None
        end);
    uc_commit =
      (fun ~pkg records ->
        Mutex.lock t.mutex;
        List.iter
          (fun (r : Store.unit_record) ->
            Hashtbl.replace t.units (rkey pkg r.Store.u_key) r)
          records;
        Mutex.unlock t.mutex;
        disk.Driver.uc_commit ~pkg records);
  }

(** Build the tree at [dir], or return the resident linked result.
    [force] bypasses (and refreshes) both this cache and the on-disk
    summary store. *)
let build (t : t) ~(config : Gofree_api.config) ?cache_dir ~jobs ~force
    (dir : string) : (Gofree_api.build * bool, Gofree_api.error) result =
  match Gofree_api.tree_key ~config dir with
  | Error e -> Error e
  | Ok key -> begin
    match if force then None else find t.builds t key with
    | Some b -> Ok (b, true)
    | None -> begin
      let disk =
        Driver.disk_unit_cache
          ~dir:
            (match cache_dir with
            | Some d -> d
            | None -> Filename.concat dir ".gofree-cache")
      in
      match
        Gofree_api.build_dir ~config ?cache_dir ~jobs ~force
          ~unit_cache:(unit_cache t ~disk) dir
      with
      | Error e -> Error e
      | Ok b ->
        let uh, um = Gofree_api.build_unit_counts b in
        Mutex.lock t.mutex;
        t.unit_hits <- t.unit_hits + uh;
        t.unit_misses <- t.unit_misses + um;
        Mutex.unlock t.mutex;
        publish t.builds t key b;
        Ok (b, false)
    end
  end
