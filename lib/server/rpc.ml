(** The [gofree-rpc-v2] wire protocol of [gofreec serve].

    Transport: a Unix-domain stream socket carrying newline-delimited
    JSON — one request object per line in, one response object per line
    out.  Responses may arrive in a different order than the requests
    that caused them (the daemon dispatches to a worker pool); clients
    correlate them through the echoed [id].

    Request envelope:
    {v
    {"schema":"gofree-rpc-v2","id":7,"method":"analyze","params":{...}}
    v}

    Response envelope:
    {v
    {"schema":"gofree-rpc-v2","id":7,"ok":true,"result":{...}}
    {"schema":"gofree-rpc-v2","id":7,"ok":false,
     "error":{"code":"compile_error","message":"..."}}
    v}

    Methods: [analyze], [build], [run], [explain], [stats], [telemetry],
    [shutdown].
    Program sources are passed either inline (["source"]) or as a path
    the {e daemon} reads (["file"]).  The pipeline configuration is the
    ["config"] param, either
    - a structured object, every field optional over the paper's
      defaults ([Gofree_api.config_of_json]):
      {v
      {"config":{"targets":"all",
                 "precision":{"field_sensitive":true,
                              "placement":"last_use"}}}
      v}
    - or, as in [gofree-rpc-v1] (whose envelopes the daemon still
      decodes), a preset name string ([gofree] | [go] | [all-targets]
      | [no-ipa] | [field-sensitive] | [last-use] | [precise]).
    Execution knobs ([gc_off], [poison], [gogc], [seed],
    [sample_every], [engine], [domains]) mirror the CLI flags.
    ["engine"] selects
    the execution engine by name ([reference] | [closure] | [bytecode],
    default [bytecode]); the historical boolean ["reference"] param is
    kept as an alias for [{"engine":"reference"}].

    Any pooled request may carry an optional ["deadline_ms"] param: if
    the request is still {e queued} when that much time has passed since
    receipt, the daemon answers [timed_out] instead of executing it
    (requests already running are never interrupted — one response per
    request, always).  Under overload the daemon sheds with an
    [overloaded] error response rather than blocking the connection;
    see the admission-control notes in [server.ml]. *)

module Json = Gofree_obs.Json
module Schema = Gofree_obs.Schema

let schema_tag = Schema.tag Schema.Rpc

(* ---------------------------------------------------------------- *)
(* Requests                                                          *)
(* ---------------------------------------------------------------- *)

(** Program source, inline or read by the daemon. *)
type src = Inline of string | File of string

type request =
  | Analyze of { src : src; config : Gofree_api.config; explain : bool }
  | Build of {
      dir : string;
      config : Gofree_api.config;
      force : bool;  (** also bypasses the daemon's resident cache *)
      jobs : int;
      run : bool;
      cache_dir : string option;
      options : Gofree_api.run_options;
    }
  | Run of {
      src : src;
      config : Gofree_api.config;
      options : Gofree_api.run_options;
    }
  | Explain of { src : src; config : Gofree_api.config }
  | Stats
  | Telemetry  (** the full [gofree-telemetry-v1] registry snapshot *)
  | Shutdown

let method_name = function
  | Analyze _ -> "analyze"
  | Build _ -> "build"
  | Run _ -> "run"
  | Explain _ -> "explain"
  | Stats -> "stats"
  | Telemetry -> "telemetry"
  | Shutdown -> "shutdown"

(** A decoded request, the id to echo in its response ([Json.Null] when
    the client sent none), and its queueing deadline, if any. *)
type incoming = {
  rq_id : Json.t;
  rq_request : request;
  rq_deadline_ms : int option;
}

(* ---------------------------------------------------------------- *)
(* Decoding                                                          *)
(* ---------------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let opt_bool ~default key params =
  match Json.member key params with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "param %S must be a boolean" key

let opt_int ~default key params =
  match Json.member key params with
  | None | Some Json.Null -> default
  | Some (Json.Int n) -> n
  | Some _ -> bad "param %S must be an integer" key

let opt_string key params =
  match Json.member key params with
  | None | Some Json.Null -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> bad "param %S must be a string" key

let req_string key params =
  match opt_string key params with
  | Some s -> s
  | None -> bad "missing required param %S" key

let src_of_params params =
  match (opt_string "source" params, opt_string "file" params) with
  | Some s, None -> Inline s
  | None, Some f -> File f
  | None, None -> bad "one of params \"source\" or \"file\" is required"
  | Some _, Some _ -> bad "params \"source\" and \"file\" are exclusive"

(* ["config"]: a structured object (v2) or a preset name string (v1).
   Absent means the paper's default configuration. *)
let config_of_params params =
  match Json.member "config" params with
  | None | Some Json.Null -> Gofree_api.Preset.(to_config default)
  | Some (Json.Str name) -> begin
    match Gofree_api.Preset.of_name name with
    | Some p -> Gofree_api.Preset.to_config p
    | None ->
      bad
        "unknown config preset %S (gofree | go | all-targets | no-ipa | \
         field-sensitive | last-use | precise)"
        name
  end
  | Some (Json.Obj _ as j) -> begin
    match Gofree_api.config_of_json j with
    | Ok c -> c
    | Error m -> bad "%s" m
  end
  | Some _ -> bad "param \"config\" must be an object or a preset name"

let options_of_params params =
  let d = Gofree_api.default_run_options in
  {
    Gofree_api.gc_off = opt_bool ~default:d.Gofree_api.gc_off "gc_off" params;
    poison = opt_bool ~default:d.Gofree_api.poison "poison" params;
    gogc = opt_int ~default:d.Gofree_api.gogc "gogc" params;
    seed = opt_int ~default:d.Gofree_api.seed "seed" params;
    sample_every =
      opt_int ~default:d.Gofree_api.sample_every "sample_every" params;
    engine =
      (match opt_string "engine" params with
      | Some name -> begin
        match Gofree_api.engine_of_name name with
        | Some e -> e
        | None ->
          bad "unknown engine %S (reference | closure | bytecode)" name
      end
      | None ->
        (* historical boolean alias for the reference tree-walker *)
        if opt_bool ~default:false "reference" params then
          Gofree_api.Eng_reference
        else d.Gofree_api.engine);
    domains =
      (let n = opt_int ~default:d.Gofree_api.domains "domains" params in
       if n < 0 || n > 64 then bad "param \"domains\" must be in 0..64"
       else n);
  }

let request_of_json (j : Json.t) : incoming =
  (match Schema.check Schema.Rpc j with
  | Ok () -> ()
  | Error m -> bad "%s" m);
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  (match id with
  | Json.Null | Json.Int _ | Json.Str _ -> ()
  | _ -> bad "\"id\" must be an integer or a string");
  let meth =
    match Json.member "method" j with
    | Some (Json.Str m) -> m
    | Some _ -> bad "\"method\" must be a string"
    | None -> bad "missing \"method\""
  in
  let params =
    match Json.member "params" j with
    | None | Some Json.Null -> Json.Obj []
    | Some (Json.Obj _ as p) -> p
    | Some _ -> bad "\"params\" must be an object"
  in
  let request =
    match meth with
    | "analyze" ->
      Analyze
        {
          src = src_of_params params;
          config = config_of_params params;
          explain = opt_bool ~default:false "explain" params;
        }
    | "build" ->
      Build
        {
          dir = req_string "dir" params;
          config = config_of_params params;
          force = opt_bool ~default:false "force" params;
          (* default 1: build-internal analysis domains would multiply
             with the daemon's own worker pool *)
          jobs = opt_int ~default:1 "jobs" params;
          run = opt_bool ~default:false "run" params;
          cache_dir = opt_string "cache_dir" params;
          options = options_of_params params;
        }
    | "run" ->
      Run
        {
          src = src_of_params params;
          config = config_of_params params;
          options = options_of_params params;
        }
    | "explain" ->
      Explain
        { src = src_of_params params; config = config_of_params params }
    | "stats" -> Stats
    | "telemetry" -> Telemetry
    | "shutdown" -> Shutdown
    | m ->
      bad
        "unknown method %S (analyze | build | run | explain | stats | \
         telemetry | shutdown)" m
  in
  let deadline_ms =
    match Json.member "deadline_ms" params with
    | None | Some Json.Null -> None
    | Some (Json.Int n) when n > 0 -> Some n
    | Some _ -> bad "param \"deadline_ms\" must be a positive integer"
  in
  { rq_id = id; rq_request = request; rq_deadline_ms = deadline_ms }

(** Decode one request line.  [Error (id, message)] echoes the request's
    [id] when the line parsed far enough to recover one. *)
let decode (line : string) : (incoming, Json.t * string) result =
  match Json.parse line with
  | exception Json.Parse_error m -> Error (Json.Null, "bad JSON: " ^ m)
  | j -> begin
    let id =
      match Json.member "id" j with
      | Some (Json.Int _ as id) | Some (Json.Str _ as id) -> id
      | _ -> Json.Null
    in
    match request_of_json j with
    | incoming -> Ok incoming
    | exception Bad m -> Error (id, m)
  end

(* ---------------------------------------------------------------- *)
(* Encoding                                                          *)
(* ---------------------------------------------------------------- *)

let request_to_json ?(id = Json.Null) ?deadline_ms (r : request) : Json.t =
  (* canonical v2 encoding: the structured object, elided when the
     request runs the paper's default configuration *)
  let config_field c =
    if c = Gofree_api.Preset.(to_config default) then []
    else [ ("config", Gofree_api.config_to_json c) ]
  in
  let src_fields = function
    | Inline s -> [ ("source", Json.Str s) ]
    | File f -> [ ("file", Json.Str f) ]
  in
  let options_fields (o : Gofree_api.run_options) =
    let d = Gofree_api.default_run_options in
    (if o.Gofree_api.gc_off <> d.Gofree_api.gc_off then
       [ ("gc_off", Json.Bool o.Gofree_api.gc_off) ]
     else [])
    @ (if o.Gofree_api.poison <> d.Gofree_api.poison then
         [ ("poison", Json.Bool o.Gofree_api.poison) ]
       else [])
    @ (if o.Gofree_api.gogc <> d.Gofree_api.gogc then
         [ ("gogc", Json.Int o.Gofree_api.gogc) ]
       else [])
    @ (if o.Gofree_api.seed <> d.Gofree_api.seed then
         [ ("seed", Json.Int o.Gofree_api.seed) ]
       else [])
    @ (if o.Gofree_api.sample_every <> d.Gofree_api.sample_every then
         [ ("sample_every", Json.Int o.Gofree_api.sample_every) ]
       else [])
    @ (if o.Gofree_api.engine <> d.Gofree_api.engine then
         [ ("engine", Json.Str (Gofree_api.engine_name o.Gofree_api.engine)) ]
       else [])
    @
    if o.Gofree_api.domains <> d.Gofree_api.domains then
      [ ("domains", Json.Int o.Gofree_api.domains) ]
    else []
  in
  let params =
    match r with
    | Analyze { src; config; explain } ->
      src_fields src @ config_field config
      @ if explain then [ ("explain", Json.Bool true) ] else []
    | Build { dir; config; force; jobs; run; cache_dir; options } ->
      [ ("dir", Json.Str dir) ]
      @ config_field config
      @ (if force then [ ("force", Json.Bool true) ] else [])
      @ [ ("jobs", Json.Int jobs) ]
      @ (if run then [ ("run", Json.Bool true) ] else [])
      @ (match cache_dir with
        | Some d -> [ ("cache_dir", Json.Str d) ]
        | None -> [])
      @ options_fields options
    | Run { src; config; options } ->
      src_fields src @ config_field config @ options_fields options
    | Explain { src; config } -> src_fields src @ config_field config
    | Stats | Telemetry | Shutdown -> []
  in
  let params =
    params
    @
    match deadline_ms with
    | Some d when d > 0 -> [ ("deadline_ms", Json.Int d) ]
    | _ -> []
  in
  Json.Obj
    ([ ("schema", Json.Str schema_tag); ("id", id);
       ("method", Json.Str (method_name r)) ]
    @ if params = [] then [] else [ ("params", Json.Obj params) ])

let response_ok ~id (result : Json.t) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str schema_tag);
      ("id", id);
      ("ok", Json.Bool true);
      ("result", result);
    ]

let response_error ~id ~code (message : string) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str schema_tag);
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("code", Json.Str code); ("message", Json.Str message) ] );
    ]

let error_code : Gofree_api.error -> string = function
  | Gofree_api.Compile_error _ -> "compile_error"
  | Gofree_api.Build_error _ -> "build_error"
  | Gofree_api.Runtime_error _ -> "runtime_error"
  | Gofree_api.Corruption _ -> "corruption"

(* ---------------------------------------------------------------- *)
(* Line framing over raw file descriptors                            *)
(* ---------------------------------------------------------------- *)

(** Buffered line reader over a socket fd (one per connection; not
    thread-safe). *)
type reader = {
  rd_fd : Unix.file_descr;
  rd_buf : Bytes.t;
  mutable rd_start : int;
  mutable rd_len : int;
  rd_acc : Buffer.t;
}

let reader fd =
  {
    rd_fd = fd;
    rd_buf = Bytes.create 65536;
    rd_start = 0;
    rd_len = 0;
    rd_acc = Buffer.create 256;
  }

(** Next newline-terminated line (terminator stripped); [None] on EOF or
    a reset connection.  A final unterminated fragment counts as EOF —
    a request line the client never finished sending. *)
let read_line (r : reader) : string option =
  let rec refill () =
    match Unix.read r.rd_fd r.rd_buf 0 (Bytes.length r.rd_buf) with
    | 0 -> false
    | n ->
      r.rd_start <- 0;
      r.rd_len <- n;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ()
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
      -> false
  in
  let rec scan () =
    if r.rd_len = 0 then
      if refill () then scan ()
      else begin
        Buffer.clear r.rd_acc;
        None
      end
    else begin
      match
        (* only a newline inside the valid window counts *)
        match Bytes.index_from_opt r.rd_buf r.rd_start '\n' with
        | Some i when i < r.rd_start + r.rd_len -> Some i
        | _ -> None
      with
      | Some i ->
        Buffer.add_subbytes r.rd_acc r.rd_buf r.rd_start (i - r.rd_start);
        r.rd_len <- r.rd_len - (i - r.rd_start + 1);
        r.rd_start <- i + 1;
        let line = Buffer.contents r.rd_acc in
        Buffer.clear r.rd_acc;
        Some line
      | None ->
        Buffer.add_subbytes r.rd_acc r.rd_buf r.rd_start r.rd_len;
        r.rd_len <- 0;
        if refill () then scan ()
        else begin
          Buffer.clear r.rd_acc;
          None
        end
    end
  in
  scan ()

(** Write [j] as one line.  Raises [Unix.Unix_error] on a dead peer;
    serialization against concurrent writers is the caller's business. *)
let write_line (fd : Unix.file_descr) (j : Json.t) : unit =
  let line = Json.to_string j ^ "\n" in
  let len = String.length line in
  let rec push off =
    if off < len then begin
      let n =
        try Unix.write_substring fd line off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      push (off + n)
    end
  in
  push 0
