(** The stable entry points of the GoFree toolchain (API version 1).

    Everything a consumer does — the [gofreec] CLI, the [gofreec serve]
    daemon, the differential tests — goes through this module: compile a
    source string, analyze/explain it, build a multi-package tree, run
    the result.  Callers never touch [Gofree_minigo]/[Gofree_escape]
    internals; results come back as the typed records below and errors
    as the {!error} sum instead of library-specific exceptions.

    Layering (DESIGN.md "Facade and server"): api → {pipeline, build,
    interp} → {escape, runtime, minigo}.  The facade owns no state — the
    daemon's resident cache sits on top of it in [Gofree_server]. *)

module Json = Gofree_obs.Json

(** Bumped on incompatible changes to the signatures below; also the
    major version of the [gofree-rpc-v1] wire protocol that mirrors this
    API. *)
let api_version = 1

(* ---------------------------------------------------------------- *)
(* Configuration                                                     *)
(* ---------------------------------------------------------------- *)

type config = Gofree_core.Config.t

(** Builder-style configuration surface (API v2).  A preset is just a
    configuration value; start from {!Preset.default} (the paper's
    shipped system) or {!Preset.stock_go} and refine it with the
    [with_*] combinators:

    {[
      Preset.(default |> with_field_sensitivity true
                      |> with_placement Gofree_core.Config.Last_use
                      |> to_config)
    ]}

    This replaces the ad-hoc preset globals ([Config.all_targets],
    [Config.no_ipa], ...) which remain available one more release as
    deprecated aliases (see {!preset} below). *)
module Preset = struct
  module C = Gofree_core.Config

  type t = config

  (** The paper's shipped configuration. *)
  let default : t = C.gofree

  (** Stock Go: no tcfree insertion. *)
  let stock_go : t = C.go

  let to_config (p : t) : config = p

  let of_config (c : config) : t = c

  let with_insertion insert_tcfree (p : t) : t = { p with C.insert_tcfree }

  let with_targets targets (p : t) : t = { p with C.targets }

  let with_ipa ipa (p : t) : t = { p with C.ipa }

  let with_backprop backprop (p : t) : t = { p with C.backprop }

  let with_precision precision (p : t) : t = { p with C.precision }

  let with_field_sensitivity field_sensitive (p : t) : t =
    { p with C.precision = { p.C.precision with C.field_sensitive } }

  let with_placement placement (p : t) : t =
    { p with C.precision = { p.C.precision with C.placement } }

  (** The named configurations the CLI, RPC layer and benchmarks refer
      to by string. *)
  let named : (string * t) list =
    [
      ("gofree", default);
      ("go", stock_go);
      ("all-targets", with_targets C.All_pointers default);
      ("no-ipa", with_ipa false default);
      ("field-sensitive", with_field_sensitivity true default);
      ("last-use", with_placement C.Last_use default);
      ("precise", with_precision C.precise_precision default);
    ]

  let of_name (n : string) : t option = List.assoc_opt n named
end

(** Deprecated (API v1): the closed preset variant.  Kept one release
    for callers of the historical flag triple; new code should use
    {!Preset}. *)
type preset =
  | Gofree  (** the paper's shipped configuration *)
  | Go  (** stock Go: no tcfree insertion *)
  | All_targets  (** also free objects through raw pointers *)
  | No_ipa  (** ablation: no inter-procedural content tags *)

(** Deprecated: use {!Preset.to_config}. *)
let config_of_preset = function
  | Gofree -> Preset.default
  | Go -> Preset.stock_go
  | All_targets -> Preset.(with_targets Gofree_core.Config.All_pointers default)
  | No_ipa -> Preset.(with_ipa false default)

(** The CLI's historical flag triple, also used by the v1 RPC layer. *)
let preset_of_flags ~go ~all_targets ~no_ipa =
  if go then Go
  else if all_targets then All_targets
  else if no_ipa then No_ipa
  else Gofree

let preset_name = function
  | Gofree -> "gofree"
  | Go -> "go"
  | All_targets -> "all-targets"
  | No_ipa -> "no-ipa"

(** Deprecated: use {!Preset.of_name}, which also knows the precision
    presets. *)
let preset_of_name = function
  | "gofree" -> Some Gofree
  | "go" -> Some Go
  | "all-targets" -> Some All_targets
  | "no-ipa" -> Some No_ipa
  | _ -> None

(* ---- config <-> JSON (the RPC v2 "config" object) ---- *)

let targets_str = function
  | Gofree_core.Config.Slices_and_maps -> "slices+maps"
  | Gofree_core.Config.All_pointers -> "all"

let targets_of_string = function
  | "slices+maps" -> Some Gofree_core.Config.Slices_and_maps
  | "all" -> Some Gofree_core.Config.All_pointers
  | _ -> None

let precision_to_json (p : Gofree_core.Config.precision) : Json.t =
  Json.Obj
    [
      ("field_sensitive", Json.Bool p.Gofree_core.Config.field_sensitive);
      ( "placement",
        Json.Str
          (Gofree_core.Config.placement_str p.Gofree_core.Config.placement)
      );
    ]

(** Schema: the [config] object of [gofree-rpc-v2] requests. *)
let config_to_json (c : config) : Json.t =
  Json.Obj
    [
      ("insert_tcfree", Json.Bool c.Gofree_core.Config.insert_tcfree);
      ("targets", Json.Str (targets_str c.Gofree_core.Config.targets));
      ("ipa", Json.Bool c.Gofree_core.Config.ipa);
      ("backprop", Json.Bool c.Gofree_core.Config.backprop);
      ("precision", precision_to_json c.Gofree_core.Config.precision);
    ]

(** Parse an RPC v2 [config] object.  Every field is optional and
    defaults to the paper's configuration, so clients send only what
    they change; unknown field names are rejected (schema check). *)
let config_of_json (j : Json.t) : (config, string) result =
  let module C = Gofree_core.Config in
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj fields ->
    let bool_field name v k =
      match v with
      | Json.Bool b -> k b
      | _ -> Error (Printf.sprintf "config.%s: expected bool" name)
    in
    let rec fold cfg = function
      | [] -> Ok cfg
      | ("insert_tcfree", v) :: rest ->
        bool_field "insert_tcfree" v (fun b ->
            fold { cfg with C.insert_tcfree = b } rest)
      | ("ipa", v) :: rest ->
        bool_field "ipa" v (fun b -> fold { cfg with C.ipa = b } rest)
      | ("backprop", v) :: rest ->
        bool_field "backprop" v (fun b ->
            fold { cfg with C.backprop = b } rest)
      | ("targets", Json.Str s) :: rest -> (
        match targets_of_string s with
        | Some t -> fold { cfg with C.targets = t } rest
        | None -> Error (Printf.sprintf "config.targets: unknown %S" s))
      | ("targets", _) :: _ -> Error "config.targets: expected string"
      | ("precision", Json.Obj pf) :: rest ->
        let rec pfold pr = function
          | [] -> Ok pr
          | ("field_sensitive", v) :: prest ->
            bool_field "precision.field_sensitive" v (fun b ->
                pfold { pr with C.field_sensitive = b } prest)
          | ("placement", Json.Str s) :: prest -> (
            match C.placement_of_string s with
            | Some p -> pfold { pr with C.placement = p } prest
            | None ->
              Error (Printf.sprintf "config.precision.placement: unknown %S" s)
            )
          | ("placement", _) :: _ ->
            Error "config.precision.placement: expected string"
          | (k, _) :: _ ->
            Error (Printf.sprintf "config.precision: unknown field %S" k)
        in
        let* pr = pfold cfg.C.precision pf in
        fold { cfg with C.precision = pr } rest
      | ("precision", _) :: _ -> Error "config.precision: expected object"
      | (k, _) :: _ -> Error (Printf.sprintf "config: unknown field %S" k)
    in
    fold C.gofree fields
  | _ -> Error "config: expected object"

(** Which execution engine interprets function bodies.  All three are
    observationally identical (output, metrics JSON, GC events) by
    construction — they share the interpreter's allocation/map/call
    helpers — and differ only in speed. *)
type engine = Gofree_interp.Interp.engine =
  | Eng_reference  (** tree-walking reference interpreter *)
  | Eng_closure  (** closure-compiled bodies *)
  | Eng_bytecode  (** flat bytecode VM with inline caches (default) *)

let engine_name = function
  | Eng_reference -> "reference"
  | Eng_closure -> "closure"
  | Eng_bytecode -> "bytecode"

let engine_of_name = function
  | "reference" -> Some Eng_reference
  | "closure" -> Some Eng_closure
  | "bytecode" -> Some Eng_bytecode
  | _ -> None

(** Options of one program execution (a subset of the interpreter's
    run_config; the rest is fixed by the config's preset). *)
type run_options = {
  gc_off : bool;
  poison : bool;  (** mock tcfree poisoning wrong frees (paper §6.8) *)
  gogc : int;
  seed : int;
  sample_every : int;  (** 0 = no time series *)
  engine : engine;  (** which engine executes function bodies *)
  domains : int;
      (** 0 = sequential scheduler; N >= 1 = run goroutines across N
          OCaml domains (work-stealing scheduler, domain-safe
          allocator, parallel GC).  [domains = 1] is byte-identical to
          sequential. *)
}

let default_run_options =
  {
    gc_off = false;
    poison = false;
    gogc = 100;
    seed = 42;
    sample_every = 0;
    engine = Eng_bytecode;
    domains = 0;
  }

let run_config_of_options ~(config : config) (o : run_options) :
    Gofree_interp.Interp.run_config =
  {
    Gofree_interp.Interp.default_config with
    heap_config =
      {
        Gofree_runtime.Heap.default_config with
        gc_disabled = o.gc_off;
        poison_on_free = o.poison;
        gogc = o.gogc;
        grow_map_free_old = config.Gofree_core.Config.insert_tcfree;
      };
    seed = Int64.of_int o.seed;
    sample_every = o.sample_every;
    engine = o.engine;
    domains = max 0 o.domains;
  }

(* ---------------------------------------------------------------- *)
(* Errors                                                            *)
(* ---------------------------------------------------------------- *)

type error =
  | Compile_error of string  (** lex/parse/type errors *)
  | Build_error of string  (** loader/driver errors of a tree build *)
  | Runtime_error of string  (** interpreter-level failure *)
  | Corruption of string  (** poison mode caught a wrong free *)

let error_message = function
  | Compile_error m | Build_error m -> m
  | Runtime_error m -> "runtime error: " ^ m
  | Corruption m -> "MEMORY CORRUPTION DETECTED: " ^ m

(** The CLI's historical exit codes: 1 compile/build, 2 runtime,
    3 corruption. *)
let error_exit_code = function
  | Compile_error _ | Build_error _ -> 1
  | Runtime_error _ -> 2
  | Corruption _ -> 3

let wrap_errors (f : unit -> 'a) : ('a, error) result =
  match f () with
  | v -> Ok v
  | exception Gofree_core.Pipeline.Compile_error m -> Error (Compile_error m)
  | exception Gofree_build.Driver.Error m -> Error (Build_error m)
  | exception Gofree_build.Loader.Error m -> Error (Build_error m)
  | exception Gofree_interp.Interp.Runtime_error m ->
    Error (Runtime_error m)
  | exception Gofree_interp.Value.Corruption m -> Error (Corruption m)
  | exception Sys_error m -> Error (Compile_error m)

(* ---------------------------------------------------------------- *)
(* Compilation of one source                                         *)
(* ---------------------------------------------------------------- *)

type compilation = {
  cc_config : config;
  cc_compiled : Gofree_core.Pipeline.compiled;
}

type free_kind = Free_slice | Free_map | Free_obj

let free_kind_name = function
  | Free_slice -> "slice"
  | Free_map -> "map"
  | Free_obj -> "obj"

(** One compiler-inserted tcfree call. *)
type insertion = {
  ins_function : string;
  ins_variable : string;
  ins_kind : free_kind;
}

let kind_of_tast = function
  | Minigo.Tast.Free_slice -> Free_slice
  | Minigo.Tast.Free_map -> Free_map
  | Minigo.Tast.Free_obj -> Free_obj

let insertions_of_list l =
  List.map
    (fun (i : Gofree_core.Instrument.inserted) ->
      {
        ins_function = i.Gofree_core.Instrument.ins_func;
        ins_variable =
          (i.Gofree_core.Instrument.ins_var.Minigo.Tast.v_name
          ^
          match i.Gofree_core.Instrument.ins_field with
          | Some (_, fname) -> "." ^ fname
          | None -> "");
        ins_kind = kind_of_tast i.Gofree_core.Instrument.ins_kind;
      })
    l

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(** Compile one MiniGo source string through the full pipeline (parse,
    typecheck, escape analysis, tcfree instrumentation). *)
let compile_string ?(config = Gofree_core.Config.gofree) (source : string) :
    (compilation, error) result =
  wrap_errors (fun () ->
      {
        cc_config = config;
        cc_compiled = Gofree_core.Pipeline.compile ~config source;
      })

(** {!compile_string} on a file's contents — the entry point behind
    [gofreec analyze] and friends. *)
let analyze_file ?config (path : string) : (compilation, error) result =
  match wrap_errors (fun () -> read_file path) with
  | Error e -> Error e
  | Ok source -> compile_string ?config source

let insertions (c : compilation) : insertion list =
  insertions_of_list c.cc_compiled.Gofree_core.Pipeline.c_inserted

(** One analysis unit (call-graph SCC) of a compilation or build, with
    the content key the incremental caches are keyed by. *)
type analysis_unit = {
  au_functions : string list;  (** the unit's functions, unit order *)
  au_key : string;  (** content key (bodies ⊕ callee summaries ⊕ config) *)
  au_cached : bool;  (** replayed from a unit cache, not analyzed *)
}

let units_of_reports (units : Gofree_escape.Analysis.unit_report list) :
    analysis_unit list =
  List.map
    (fun (u : Gofree_escape.Analysis.unit_report) ->
      {
        au_functions = u.Gofree_escape.Analysis.ur_funcs;
        au_key = u.Gofree_escape.Analysis.ur_key;
        au_cached = u.Gofree_escape.Analysis.ur_cached;
      })
    units

(** The compilation's analysis units in bottom-up solve order. *)
let compilation_units (c : compilation) : analysis_unit list =
  units_of_reports
    c.cc_compiled.Gofree_core.Pipeline.c_analysis
      .Gofree_escape.Analysis.units

let function_names (c : compilation) : string list =
  List.map
    (fun (f : Minigo.Tast.func) -> f.Minigo.Tast.f_name)
    c.cc_compiled.Gofree_core.Pipeline.c_program.Minigo.Tast.p_funcs

(** The instrumented program, pretty-printed ([gofreec instrument]). *)
let instrumented_source (c : compilation) : string =
  Minigo.Pretty.program_to_string
    c.cc_compiled.Gofree_core.Pipeline.c_program

(** The bytecode-engine lowering of the compilation, disassembled with
    resolved slot names and inline-cache sites ([gofreec disasm]). *)
let disassemble (c : compilation) : string =
  let program = c.cc_compiled.Gofree_core.Pipeline.c_program in
  let decisions =
    Gofree_interp.Decisions.of_analysis
      c.cc_compiled.Gofree_core.Pipeline.c_analysis program
  in
  let layout = Gofree_interp.Layout.of_program program in
  Gofree_interp.Bytecode.disasm
    (Gofree_interp.Emit.lower program decisions layout)

(** Compile and disassemble one source string. *)
let disassemble_string ?config (source : string) : (string, error) result =
  match compile_string ?config source with
  | Error e -> Error e
  | Ok c -> Ok (disassemble c)

(* ---- analysis reports ---- *)

(** Property table and points-to sets of [func] (all functions when
    omitted), followed by the insertion list — the [gofreec analyze]
    text report. *)
let pp_analysis ?func fmt (c : compilation) =
  let funcs =
    match func with Some f -> [ f ] | None -> function_names c
  in
  List.iter
    (fun name ->
      Gofree_core.Report.pp_function fmt
        c.cc_compiled.Gofree_core.Pipeline.c_analysis name;
      Format.pp_print_newline fmt ())
    funcs;
  Gofree_core.Report.pp_inserted fmt
    c.cc_compiled.Gofree_core.Pipeline.c_inserted;
  Format.pp_print_newline fmt ()

(** Escape graph of one function as Graphviz DOT; [None] if the function
    was not analyzed. *)
let analysis_dot (c : compilation) ~func : string option =
  Gofree_core.Report.to_dot
    c.cc_compiled.Gofree_core.Pipeline.c_analysis func

(* ---- freeing diagnostics ---- *)

(** Total per-site classification of the compilation's allocation sites
    ([gofreec analyze --explain]). *)
type explain = Gofree_core.Report.site_explain list

let explain (c : compilation) : explain =
  Gofree_core.Report.explain c.cc_compiled.Gofree_core.Pipeline.c_analysis
    c.cc_compiled.Gofree_core.Pipeline.c_inserted c.cc_config
    c.cc_compiled.Gofree_core.Pipeline.c_program

let pp_explain = Gofree_core.Report.pp_explain

(** Schema [gofree-explain-v1]. *)
let explain_to_json = Gofree_core.Report.explain_to_json

(** Per-blocking-reason histogram of the GC-bound heap sites. *)
let blocking_counts (e : explain) : (string * int) list =
  List.map
    (fun (b, n) -> (Gofree_core.Report.blocking_str b, n))
    (Gofree_core.Report.blocking_counts e)

(** Which blocking reasons [refined] eliminated relative to [baseline]
    on the same program (the [analyze --explain-delta] artifact). *)
let explain_delta ~(baseline : explain) ~(refined : explain) :
    Gofree_obs.Json.t =
  Gofree_core.Report.explain_delta ~baseline ~refined

(* ---------------------------------------------------------------- *)
(* Execution                                                         *)
(* ---------------------------------------------------------------- *)

type metrics = Gofree_runtime.Metrics.t

let pp_metrics = Gofree_runtime.Metrics.pp

type run_outcome = {
  output : string;
  panicked : bool;
  wall_ns : int64;
  steps : int;
  metrics : metrics;
  metrics_json : Json.t;
      (** the [--metrics-json] document: final counters plus the sampled
          time series when one was recorded *)
}

let outcome_of_result (r : Gofree_interp.Runner.result) : run_outcome =
  let metrics_json =
    Json.Obj
      ([
         ( "metrics",
           Gofree_runtime.Metrics.to_json r.Gofree_interp.Runner.metrics );
       ]
      @
      match r.Gofree_interp.Runner.sampler with
      | Some s -> [ ("samples", Gofree_runtime.Sampler.to_json s) ]
      | None -> [])
  in
  {
    output = r.Gofree_interp.Runner.output;
    panicked = r.Gofree_interp.Runner.panicked;
    wall_ns = r.Gofree_interp.Runner.wall_ns;
    steps = r.Gofree_interp.Runner.steps;
    metrics = r.Gofree_interp.Runner.metrics;
    metrics_json;
  }

(** Execute a compilation to completion.  A program panic is a normal
    outcome ([panicked = true]); [Error] means the interpreter itself
    failed (budget exceeded, corruption under poison, ...). *)
let run_compilation ?(options = default_run_options) (c : compilation) :
    (run_outcome, error) result =
  wrap_errors (fun () ->
      let run_config = run_config_of_options ~config:c.cc_config options in
      outcome_of_result
        (Gofree_interp.Runner.run ~config:run_config c.cc_compiled))

(** Compile and run one source string. *)
let run_string ?config ?options (source : string) :
    (run_outcome, error) result =
  match compile_string ?config source with
  | Error e -> Error e
  | Ok c -> run_compilation ?options c

(* ---------------------------------------------------------------- *)
(* Multi-package builds                                              *)
(* ---------------------------------------------------------------- *)

type build = {
  bb_config : config;
  bb_result : Gofree_build.Driver.result;
}

type build_stats = Gofree_build.Driver.stats

(** The driver's function-granular cache interface, re-exported so the
    daemon can layer its resident unit table over the on-disk cache. *)
type unit_cache = Gofree_build.Driver.unit_cache

(** Build the multi-package tree rooted at [dir] (incremental through
    the on-disk summary store layered over function-granular unit
    records, parallel analysis on [jobs] domains).  [unit_cache]
    defaults to the on-disk unit cache under the tree's cache
    directory. *)
let build_dir ?(config = Gofree_core.Config.gofree) ?cache_dir ?(jobs = 0)
    ?(force = false) ?unit_cache (dir : string) : (build, error) result =
  wrap_errors (fun () ->
      {
        bb_config = config;
        bb_result =
          Gofree_build.Driver.build ~config ?cache_dir ~jobs ~force
            ?unit_cache dir;
      })

let build_stats (b : build) : build_stats =
  b.bb_result.Gofree_build.Driver.b_stats

let pp_build_stats = Gofree_build.Driver.pp_stats

(** Schema [gofree-build-stats-v1]. *)
let build_stats_to_json = Gofree_build.Driver.stats_to_json

let build_insertions (b : build) : insertion list =
  insertions_of_list b.bb_result.Gofree_build.Driver.b_inserted

(** Packages built, cache hits among them. *)
let build_cache_counts (b : build) : int * int =
  let st = b.bb_result.Gofree_build.Driver.b_stats in
  ( List.length st.Gofree_build.Driver.bs_pkgs,
    st.Gofree_build.Driver.bs_hits )

(** Unit-level cache traffic of the build: (units replayed from the
    unit cache, units actually analyzed). *)
let build_unit_counts (b : build) : int * int =
  let st = b.bb_result.Gofree_build.Driver.b_stats in
  ( st.Gofree_build.Driver.bs_unit_hits,
    st.Gofree_build.Driver.bs_unit_misses )

(** Execute a linked build under the decisions its per-package analyses
    (or their cached summaries) produced. *)
let run_build ?(options = default_run_options) (b : build) :
    (run_outcome, error) result =
  wrap_errors (fun () ->
      let run_config = run_config_of_options ~config:b.bb_config options in
      let decisions =
        {
          Gofree_interp.Decisions.site_heap =
            b.bb_result.Gofree_build.Driver.b_site_heap;
          var_boxed = b.bb_result.Gofree_build.Driver.b_var_boxed;
        }
      in
      outcome_of_result
        (Gofree_interp.Runner.run_program ~config:run_config ~decisions
           b.bb_result.Gofree_build.Driver.b_program))

(* ---------------------------------------------------------------- *)
(* Content hashing (for callers that cache across requests)          *)
(* ---------------------------------------------------------------- *)

(* [Config.signature] is exhaustive over the record, so a config field
   missing from the cache keys is a compile error there, not a silent
   aliasing bug here. *)
let config_signature (c : config) =
  Printf.sprintf "v%d %s" api_version (Gofree_core.Config.signature c)

(** Content hash of one source under [config] — the key of the daemon's
    resident compilation cache. *)
let source_key ~(config : config) (source : string) : string =
  Digest.to_hex
    (Digest.string (config_signature config ^ "\000" ^ source))

(** Content hash of every source file under [dir] (the loader's layout
    convention) plus [config] — the key of the daemon's resident build
    cache.  Reads file bytes only: a warm hit skips parsing, checking
    and analysis alike. *)
let tree_key ~(config : config) (dir : string) : (string, error) result =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (config_signature config);
  let is_source f =
    Filename.check_suffix f ".go" || Filename.check_suffix f ".minigo"
  in
  let skip name =
    String.length name = 0 || name.[0] = '.' || name.[0] = '_'
  in
  let rec walk rel abs =
    List.iter
      (fun entry ->
        let abs' = Filename.concat abs entry in
        let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
        if Sys.is_directory abs' then begin
          if not (skip entry) then walk rel' abs'
        end
        else if is_source entry then begin
          Buffer.add_string buf rel';
          Buffer.add_char buf '\000';
          Buffer.add_string buf (read_file abs');
          Buffer.add_char buf '\000'
        end)
      (List.sort compare (Array.to_list (Sys.readdir abs)))
  in
  match walk "" dir with
  | () -> Ok (Digest.to_hex (Digest.string (Buffer.contents buf)))
  | exception Sys_error m -> Error (Build_error m)
