(* Per-domain run queue for the work-stealing goroutine scheduler.

   A mutex-protected deque: the owning domain pushes freshly spawned /
   yielded goroutines at the back and pops runnable work from the
   front (FIFO, matching the sequential scheduler's [Queue]), while
   thief domains steal half the queue from the front.  Stealing from
   the front means thieves take the *oldest* goroutines — the ones the
   owner would run last — which keeps the owner's cache-warm recent
   work local, the classic Go-runtime split.

   A plain mutex (rather than a Chase–Lev array) keeps the single-domain
   fast path trivially deterministic: with one domain there are no
   thieves, so operations reduce to FIFO queue pushes and pops in
   program order. *)

type 'a t = {
  lock : Mutex.t;
  q : 'a Queue.t;
  mutable size : int;  (** cached [Queue.length q], read under [lock] *)
}

let create () = { lock = Mutex.create (); q = Queue.create (); size = 0 }

let push t x =
  Mutex.lock t.lock;
  Queue.add x t.q;
  t.size <- t.size + 1;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  let r =
    if t.size = 0 then None
    else begin
      t.size <- t.size - 1;
      Some (Queue.pop t.q)
    end
  in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = t.size in
  Mutex.unlock t.lock;
  n

(* Steal ceil(n/2) items from the front of [victim] and push them onto
   [into] (owned by the thief), preserving their order.  Returns the
   number of goroutines moved.  Locks are taken one at a time — victim
   first, then thief — so there is no lock-order cycle with concurrent
   thieves. *)
let steal_half ~victim ~into =
  Mutex.lock victim.lock;
  let n = victim.size in
  let want = (n + 1) / 2 in
  let grabbed = ref [] in
  for _ = 1 to want do
    grabbed := Queue.pop victim.q :: !grabbed
  done;
  victim.size <- n - want;
  Mutex.unlock victim.lock;
  if want > 0 then begin
    Mutex.lock into.lock;
    List.iter (fun x -> Queue.add x into.q) (List.rev !grabbed);
    into.size <- into.size + want;
    Mutex.unlock into.lock
  end;
  want
