(** Per-domain run queue for the work-stealing goroutine scheduler.

    Owner operations keep FIFO order ([push] at the back, [pop] from
    the front), so a single-domain scheduler built on one queue is
    observationally identical to the sequential [Queue]-based one.
    Thieves take the oldest half of a victim's queue with
    {!steal_half}.  All operations are safe to call from any domain. *)

type 'a t

val create : unit -> 'a t

(** Enqueue at the back. *)
val push : 'a t -> 'a -> unit

(** Dequeue from the front; [None] when empty. *)
val pop : 'a t -> 'a option

val length : 'a t -> int

(** Move the front half (ceil) of [victim] to the back of [into],
    preserving order; returns how many items moved. *)
val steal_half : victim:'a t -> into:'a t -> int
