(** Bounded work queue feeding a fixed pool of worker [Domain]s.

    One pool abstraction shared by the daemon (request execution), the
    build driver (package analysis) and the in-package analysis-unit
    scheduler.  Jobs live in per-{e key} FIFO queues drained round-robin
    across keys, so a submitter keying by client gets per-client
    fairness; plain {!submit} shares one key and behaves like a single
    FIFO.  {!shutdown} drains every accepted job before joining the
    workers.

    Deadlock rule for nested use: a job running ON a pool worker must
    never {!submit} to the same pool — with the queue full every worker
    could block in [submit] and nobody would drain.  Schedulers that
    feed the pool therefore run on their own thread and are the sole
    submitters; worker jobs only signal them. *)

type job = unit -> unit

type t

(** [create ?workers ?capacity ()] spawns the worker domains.
    [workers <= 0] (the default) picks
    [min 4 (recommended_domain_count - 1)]. *)
val create : ?workers:int -> ?capacity:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** Queued (not yet started) jobs — the [stats] request's queue depth. *)
val queue_depth : t -> int

(** Deepest the queue has ever been ([queue_high_watermark]). *)
val max_queue_depth : t -> int

val capacity : t -> int

(** Enqueue [job] under [key] (default: one shared key), blocking while
    the queue is full.  [false] iff the pool is shutting down and the
    job was not accepted.  Exceptions escaping a job are swallowed; jobs
    must report their own errors. *)
val submit : ?key:int -> t -> job -> bool

(** Non-blocking admission control: enqueue under [key] unless the
    queue already holds [watermark] jobs (default: capacity), then
    [`Full] — the caller sheds the work explicitly instead of blocking.
    [`Stopping] when the pool no longer accepts work. *)
val try_submit :
  ?key:int -> ?watermark:int -> t -> job -> [ `Accepted | `Full | `Stopping ]

(** Stop intake, run every already-queued job to completion, join the
    workers.  Idempotent. *)
val shutdown : t -> unit
