(** Bounded work queue feeding a fixed pool of worker [Domain]s.

    Connection reader threads {!submit} jobs; when the queue is at
    capacity the submitter blocks until a worker drains it — the
    backpressure that keeps a flood of requests from ballooning memory
    (the client's socket fills up next, pushing the wait onto the
    client).  {!shutdown} stops intake, lets the workers finish every
    queued job (drain semantics — in-flight requests still get their
    responses) and joins the domains. *)

type job = unit -> unit

type t = {
  jobs : job Queue.t;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  capacity : int;
  mutable stopping : bool;
  mutable in_flight : int;  (** jobs currently executing on a worker *)
  mutable workers : unit Domain.t array;
}

let default_workers () =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

let worker (t : t) (index : int) () =
  (* pool workers get their own trace tracks, clear of the build
     driver's analysis workers (tid_worker 0..) *)
  Gofree_obs.Trace.set_domain_tid (Gofree_obs.Trace.tid_worker (16 + index));
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.jobs then begin
      (* stopping and nothing left: drain complete *)
      Mutex.unlock t.mutex
    end
    else begin
      let job = Queue.pop t.jobs in
      t.in_flight <- t.in_flight + 1;
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      (try job () with _ -> ());
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?(workers = 0) ?(capacity = 64) () : t =
  let workers = if workers > 0 then workers else default_workers () in
  let t =
    {
      jobs = Queue.create ();
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      capacity = max 1 capacity;
      stopping = false;
      in_flight = 0;
      workers = [||];
    }
  in
  t.workers <- Array.init workers (fun i -> Domain.spawn (worker t i));
  t

let size (t : t) = Array.length t.workers

(** Queued (not yet started) jobs — the [stats] request's queue depth. *)
let queue_depth (t : t) : int =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

(** Enqueue [job], blocking while the queue is full.  [false] iff the
    pool is shutting down and the job was not accepted. *)
let submit (t : t) (job : job) : bool =
  Mutex.lock t.mutex;
  while Queue.length t.jobs >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mutex
  done;
  let accepted = not t.stopping in
  if accepted then begin
    Queue.push job t.jobs;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  accepted

(** Stop intake, run every already-queued job to completion, join the
    workers.  Idempotent. *)
let shutdown (t : t) : unit =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  if not already then Array.iter Domain.join t.workers
