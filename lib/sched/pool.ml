(** Bounded work queue feeding a fixed pool of worker [Domain]s.

    Jobs are held in per-{e key} FIFO queues drained {e round-robin}
    across the keys: the daemon keys submissions by client connection,
    so one client pipelining hundreds of requests cannot starve the
    others — each rotation serves at most one job per key.  Submitters
    that use plain {!submit} share one key, which degenerates to the
    original single FIFO (the build driver's scheduler is unchanged).

    Admission comes in two flavors:
    - {!submit} blocks while the queue is at capacity — the passive
      backpressure the build driver wants;
    - {!try_submit} never blocks: past the given high-watermark it
      returns [`Full] and the caller sheds the work explicitly (the
      daemon's [overloaded] response).

    {!shutdown} stops intake, lets the workers finish every queued job
    (drain semantics — in-flight requests still get their responses)
    and joins the domains. *)

type job = unit -> unit

type t = {
  queues : (int, job Queue.t) Hashtbl.t;  (** key → pending jobs *)
  rotation : int Queue.t;
      (** keys holding at least one job, served front-to-back; a key
          re-enters at the back after yielding one job *)
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  capacity : int;
  mutable depth : int;  (** total queued jobs, across keys *)
  mutable max_depth : int;  (** high-watermark of [depth] over the pool's life *)
  mutable stopping : bool;
  mutable in_flight : int;  (** jobs currently executing on a worker *)
  mutable workers : unit Domain.t array;
}

let default_workers () =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

(* Callers must hold [t.mutex]. *)
let enqueue_locked (t : t) ~key job =
  (match Hashtbl.find_opt t.queues key with
  | Some q -> Queue.push job q
  | None ->
    let q = Queue.create () in
    Queue.push job q;
    Hashtbl.replace t.queues key q;
    Queue.push key t.rotation);
  t.depth <- t.depth + 1;
  if t.depth > t.max_depth then t.max_depth <- t.depth;
  Condition.signal t.not_empty

(* Round-robin pop: the front key yields one job and, if it still has
   work, rejoins the rotation at the back.  Callers must hold [t.mutex]
   and have checked [depth > 0]. *)
let dequeue_locked (t : t) : job =
  let key = Queue.pop t.rotation in
  let q = Hashtbl.find t.queues key in
  let job = Queue.pop q in
  if Queue.is_empty q then Hashtbl.remove t.queues key
  else Queue.push key t.rotation;
  t.depth <- t.depth - 1;
  job

let worker (t : t) (index : int) () =
  (* pool workers get their own trace tracks, clear of the build
     driver's analysis workers (tid_worker 0..) *)
  Gofree_obs.Trace.set_domain_tid (Gofree_obs.Trace.tid_worker (16 + index));
  let rec loop () =
    Mutex.lock t.mutex;
    while t.depth = 0 && not t.stopping do
      Condition.wait t.not_empty t.mutex
    done;
    if t.depth = 0 then begin
      (* stopping and nothing left: drain complete *)
      Mutex.unlock t.mutex
    end
    else begin
      let job = dequeue_locked t in
      t.in_flight <- t.in_flight + 1;
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      (try job () with _ -> ());
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?(workers = 0) ?(capacity = 64) () : t =
  let workers = if workers > 0 then workers else default_workers () in
  let t =
    {
      queues = Hashtbl.create 16;
      rotation = Queue.create ();
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      capacity = max 1 capacity;
      depth = 0;
      max_depth = 0;
      stopping = false;
      in_flight = 0;
      workers = [||];
    }
  in
  t.workers <- Array.init workers (fun i -> Domain.spawn (worker t i));
  t

let size (t : t) = Array.length t.workers

(** Queued (not yet started) jobs — the [stats] request's queue depth. *)
let queue_depth (t : t) : int =
  Mutex.lock t.mutex;
  let n = t.depth in
  Mutex.unlock t.mutex;
  n

(** Deepest the queue has ever been — the [queue_high_watermark]
    counter. *)
let max_queue_depth (t : t) : int =
  Mutex.lock t.mutex;
  let n = t.max_depth in
  Mutex.unlock t.mutex;
  n

let capacity (t : t) = t.capacity

(** Enqueue [job] under [key] (default a shared key), blocking while the
    queue is full.  [false] iff the pool is shutting down and the job
    was not accepted. *)
let submit ?(key = 0) (t : t) (job : job) : bool =
  Mutex.lock t.mutex;
  while t.depth >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mutex
  done;
  let accepted = not t.stopping in
  if accepted then enqueue_locked t ~key job;
  Mutex.unlock t.mutex;
  accepted

(** Non-blocking admission: enqueue [job] under [key] unless the queue
    already holds [watermark] jobs (default: capacity) — then [`Full],
    and the caller sheds.  [`Stopping] when the pool no longer accepts
    work. *)
let try_submit ?(key = 0) ?watermark (t : t) (job : job) :
    [ `Accepted | `Full | `Stopping ] =
  let watermark =
    match watermark with
    | Some w -> min (max 1 w) t.capacity
    | None -> t.capacity
  in
  Mutex.lock t.mutex;
  let outcome =
    if t.stopping then `Stopping
    else if t.depth >= watermark then `Full
    else begin
      enqueue_locked t ~key job;
      `Accepted
    end
  in
  Mutex.unlock t.mutex;
  outcome

(** Stop intake, run every already-queued job to completion, join the
    workers.  Idempotent. *)
let shutdown (t : t) : unit =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  if not already then Array.iter Domain.join t.workers
