(** Closure compiler for instrumented MiniGo: a lowering pass run once
    per program after the GoFree pipeline.  Statements and expressions
    become OCaml closures over [state -> frame -> _]; variables become
    direct slot-array indices ({!Layout}); callees become interned
    function ids; frames are pre-sized arrays.

    Compiled execution is observationally identical to the reference
    tree-walker in {!Interp}: both modes call the same shared
    allocation, map, tcfree and call-protocol helpers in the same
    order, so allocation counts, free attempts, GC cycle points and
    scheduler interleavings are bit-identical. *)

open Minigo

(** A lowered function: everything {!Interp.call_fn} needs, precomputed
    once per program instead of per call. *)
type cfunc = {
  cf_fn : Tast.func;
  cf_nslots : int;
  cf_bind : Interp.state -> Interp.frame -> Value.value list -> unit;
  cf_body : Interp.state -> Interp.frame -> unit;
  cf_zeros : Interp.state -> Value.value list;
}

type t = cfunc array

(** Lower every function of the program (emits a ["lower"] trace span,
    so the phase shows up next to parse/typecheck/escape/instrument). *)
val lower : Tast.program -> Decisions.t -> Layout.t -> t

(** A dispatch function executing lowered bodies, suitable for
    [state.dispatch]. *)
val dispatch :
  t -> Interp.state -> int -> Value.value list -> Value.value list

(** Point [state.dispatch] at the lowered code. *)
val install : Interp.state -> t -> unit

(** {2 Compilation primitives}

    Exported for {!Emit}: the bytecode emitter compiles hot constructs
    to dedicated opcodes and falls back to these closure compilers for
    the long tail, so the two lowered engines share one semantics. *)

(** Compiled expression: evaluates in a (state, frame). *)
type ev = Interp.state -> Interp.frame -> Value.value

(** Compiled statement. *)
type ex = Interp.state -> Interp.frame -> unit

(** Per-program compilation context. *)
type ctx = {
  tenv : Types.env;
  decisions : Decisions.t;
  layout : Layout.t;
}

val compile_expr : ctx -> Tast.expr -> ev
val compile_stmt : ctx -> Tast.stmt -> ex

(** Left-to-right evaluation with Go assignment copies. *)
val eval_list_copy : ev list -> Interp.state -> Interp.frame -> Value.value list

(** Declaration of a resolved variable: boxing decision baked in. *)
val compile_declare :
  ctx -> Tast.var -> Interp.state -> Interp.frame -> Value.value -> unit

(** Assignment to an lvalue (value already copied by the caller). *)
val compile_assign :
  ctx -> Tast.lvalue -> Interp.state -> Interp.frame -> Value.value -> unit

(** Address-of an lvalue, as [VPtr]. *)
val compile_addr : ctx -> Tast.lvalue -> ev
