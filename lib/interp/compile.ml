(** Closure compiler for instrumented MiniGo: the lowering pass that
    runs once per program, after the GoFree pipeline, and turns every
    statement and expression into an OCaml closure over
    [state -> frame -> _].

    What lowering buys over the reference tree-walker:

    - per-node [match] dispatch disappears — each node's shape is
      decided once, at compile time;
    - every variable access is a direct array index into the frame's
      slot array (resolved through {!Layout}) instead of a [Hashtbl]
      probe keyed by variable id;
    - calls, [go] and [defer] resolve their callee to an interned
      function id at compile time, and frames are pre-sized arrays
      instead of per-call [Hashtbl.create];
    - constants, zero builders, boxing decisions and allocation-site
      sizes are precomputed into the closures.

    What it deliberately does {e not} change: every allocator-visible
    event.  Compiled code calls the exact helpers of {!Interp}
    ([safepoint], [alloc_obj], [map_store], [eval_append],
    [tcfree_binding], [call_fn], …) in the exact order the reference
    walker does — including quirks like the right-hand side of an
    assignment evaluating before its target resolves, or the base of a
    nested field address evaluating twice.  Alloc counts, free
    attempts, GC cycle points and scheduler interleavings are therefore
    bit-identical between the two modes (the differential test in
    [test/test_compile_differential.ml] holds this line). *)

open Minigo
module Rt = Gofree_runtime
open Interp

type ev = state -> frame -> Value.value

type ex = state -> frame -> unit

(** A lowered function: everything {!Interp.call_fn} needs, precomputed
    once. *)
type cfunc = {
  cf_fn : Tast.func;
  cf_nslots : int;
  cf_bind : state -> frame -> Value.value list -> unit;
  cf_body : state -> frame -> unit;
  cf_zeros : state -> Value.value list;
}

type t = cfunc array

(* Compile-time context: everything the closures capture instead of
   re-deriving per node visit. *)
type ctx = {
  tenv : Types.env;
  decisions : Decisions.t;
  layout : Layout.t;
}

let vtrue = Value.VBool true

let vfalse = Value.VBool false

(* Evaluate a closure list left to right (OCaml's application order is
   unspecified, so the binding below is load-bearing: argument and
   literal lists must observe allocation effects in source order). *)
let rec eval_list (cs : ev list) st fr : Value.value list =
  match cs with
  | [] -> []
  | c :: rest ->
    let v = c st fr in
    v :: eval_list rest st fr

(* Same, copying each element (argument/element passing semantics). *)
let rec eval_list_copy (cs : ev list) st fr : Value.value list =
  match cs with
  | [] -> []
  | c :: rest ->
    let v = Value.copy (c st fr) in
    v :: eval_list_copy rest st fr

(* Slot read, mirroring [Interp.lookup_binding] + [binding_cell] +
   [read_cell] with the slot resolved at compile time. *)
let compile_var ctx (v : Tast.var) : ev =
  let s = Layout.slot ctx.layout v in
  match v.Tast.v_kind with
  | Tast.Vglobal ->
    let err = "unbound global " ^ v.Tast.v_name in
    fun st _fr ->
      (match st.globals.(s) with
      | Bdirect c | Bboxed (_, c) -> Value.read_cell c
      | Bunbound -> raise (Runtime_error err))
  | _ ->
    let err = "unbound variable " ^ v.Tast.v_name in
    fun _st fr ->
      (match fr.slots.(s) with
      | Bdirect c | Bboxed (_, c) -> Value.read_cell c
      | Bunbound -> raise (Runtime_error err))

(* Slot lookup yielding the binding itself (address-of, struct bases). *)
let compile_var_binding ctx (v : Tast.var) : state -> frame -> binding =
  let s = Layout.slot ctx.layout v in
  match v.Tast.v_kind with
  | Tast.Vglobal ->
    let err = "unbound global " ^ v.Tast.v_name in
    fun st _fr ->
      (match st.globals.(s) with
      | Bunbound -> raise (Runtime_error err)
      | b -> b)
  | _ ->
    let err = "unbound variable " ^ v.Tast.v_name in
    fun _st fr ->
      (match fr.slots.(s) with
      | Bunbound -> raise (Runtime_error err)
      | b -> b)

(* Binding a declared variable: boxing decision, heap-box size and slot
   all resolved at compile time (mirrors [Interp.declare_var]). *)
let compile_declare ctx (v : Tast.var) : state -> frame -> Value.value -> unit
    =
  let s = Layout.slot ctx.layout v in
  if Decisions.var_is_boxed ctx.decisions v then begin
    let size = max 8 (Types.size_of ctx.tenv v.Tast.v_ty) in
    fun st fr value ->
      let c = Value.cell value in
      let obj =
        alloc_heap_obj st ~category:Rt.Metrics.Cat_other ~size
          ~payload:(Value.Pcells [| c |])
      in
      fr.slots.(s) <- Bboxed (obj.Rt.Heap.addr, c)
  end
  else fun _st fr value -> fr.slots.(s) <- Bdirect (Value.cell value)

let rec compile_expr ctx (e : Tast.expr) : ev =
  match e.Tast.desc with
  | Tast.Tint n ->
    let v = Value.VInt n in
    fun _ _ -> v
  | Tast.Tfloat f ->
    let v = Value.VFloat f in
    fun _ _ -> v
  | Tast.Tbool b ->
    let v = if b then vtrue else vfalse in
    fun _ _ -> v
  | Tast.Tstring s ->
    let v = Value.VStr s in
    fun _ _ -> v
  | Tast.Tnil -> fun _ _ -> Value.VNil
  | Tast.Tvar v -> compile_var ctx v
  | Tast.Tbinop (Ast.Band, a, b) ->
    let ca = compile_expr ctx a and cb = compile_expr ctx b in
    fun st fr -> if truthy (ca st fr) then cb st fr else vfalse
  | Tast.Tbinop (Ast.Bor, a, b) ->
    let ca = compile_expr ctx a and cb = compile_expr ctx b in
    fun st fr -> if truthy (ca st fr) then vtrue else cb st fr
  | Tast.Tbinop (op, a, b) ->
    let ca = compile_expr ctx a and cb = compile_expr ctx b in
    fun st fr ->
      let va = ca st fr in
      let vb = cb st fr in
      eval_binop op va vb
  | Tast.Tunop (Ast.Uneg, a) ->
    let ca = compile_expr ctx a in
    fun st fr ->
      (match ca st fr with
      | Value.VInt n -> Value.VInt (-n)
      | Value.VFloat f -> Value.VFloat (-.f)
      | _ -> raise (Runtime_error "cannot negate"))
  | Tast.Tunop (Ast.Unot, a) ->
    let ca = compile_expr ctx a in
    fun st fr -> Value.VBool (not (truthy (ca st fr)))
  | Tast.Taddr lv -> compile_addr ctx lv
  | Tast.Tderef a ->
    let ca = compile_expr ctx a in
    fun st fr ->
      (match ca st fr with
      | Value.VPtr p -> Value.read_cell p.Value.p_cell
      | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
      | _ -> raise (Runtime_error "dereference of a non-pointer"))
  | Tast.Tindex (a, i) ->
    let ca = compile_expr ctx a and ci = compile_expr ctx i in
    fun st fr ->
      let va = ca st fr in
      let vi = as_int (ci st fr) in
      (match va with
      | Value.VSlice s ->
        if vi < 0 || vi >= s.Value.s_len then
          raise (Panic (Value.VStr "index out of range"));
        Value.read_cell s.Value.s_cells.(s.Value.s_off + vi)
      | Value.VStr s ->
        if vi < 0 || vi >= String.length s then
          raise (Panic (Value.VStr "index out of range"));
        Value.VInt (Char.code s.[vi])
      | Value.VNil -> raise (Panic (Value.VStr "index of nil slice"))
      | _ -> raise (Runtime_error "cannot index this value"))
  | Tast.Tmap_get (m, k) ->
    let cm = compile_expr ctx m and ck = compile_expr ctx k in
    let ty = e.Tast.ty in
    let tenv = ctx.tenv in
    let zero () = Value.zero tenv ty in
    fun st fr ->
      let vm = cm st fr in
      let vk = ck st fr in
      (match vm with
      | Value.VMap addr -> map_get st addr vk ~zero
      | Value.VNil -> zero ()
      | _ -> raise (Runtime_error "not a map"))
  | Tast.Tfield (a, idx, name) ->
    let ca = compile_expr ctx a in
    let err = "field access ." ^ name ^ " on non-struct" in
    fun st fr ->
      let base =
        match ca st fr with
        | Value.VPtr p -> Value.read_cell p.Value.p_cell
        | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
        | v -> v
      in
      (match base with
      | Value.VStruct cells -> Value.read_cell cells.(idx)
      | _ -> raise (Runtime_error err))
  | Tast.Tcall (name, args) -> begin
    let cargs = List.map (compile_expr ctx) args in
    match Layout.func_id ctx.layout name with
    | Some fid ->
      fun st fr ->
        (match st.dispatch st fid (eval_list cargs st fr) with
        | [] -> Value.VUnit
        | [ v ] -> pin st fr v
        | vs -> pin st fr (Value.VTuple vs))
    | None ->
      (* undefined callee: unreachable after typechecking, but keep the
         reference behaviour — arguments evaluate, then the error *)
      let err = "undefined function " ^ name in
      fun st fr ->
        ignore (eval_list cargs st fr);
        raise (Runtime_error err)
  end
  | Tast.Tmake_slice (site, elem, len, cap) -> begin
    let clen = compile_expr ctx len in
    let elem_size = site.Tast.site_elem_size in
    let tenv = ctx.tenv in
    let zero_of () = Value.zero tenv elem in
    match cap with
    | Some cap ->
      let ccap = compile_expr ctx cap in
      fun st fr ->
        let len = as_int (clen st fr) in
        if len < 0 then
          raise (Panic (Value.VStr "makeslice: negative length"));
        let cap = as_int (ccap st fr) in
        make_slice_obj st fr ~site ~elem_size ~len ~cap ~zero_of
    | None ->
      fun st fr ->
        let len = as_int (clen st fr) in
        if len < 0 then
          raise (Panic (Value.VStr "makeslice: negative length"));
        make_slice_obj st fr ~site ~elem_size ~len ~cap:len ~zero_of
  end
  | Tast.Tmake_map (site, _, _) -> fun st fr -> make_map_obj st fr ~site
  | Tast.Tnew (site, ty) ->
    let size = max 8 site.Tast.site_elem_size in
    let tenv = ctx.tenv in
    fun st fr ->
      let c = Value.cell (Value.zero tenv ty) in
      let obj =
        alloc_obj st fr ~site ~category:Rt.Metrics.Cat_other ~size
          ~payload:(Value.Pcells [| c |])
      in
      pin st fr (Value.VPtr { Value.p_owner = obj.Rt.Heap.addr; p_cell = c })
  | Tast.Tslice_lit (site, _, es) ->
    let ces = List.map (compile_expr ctx) es in
    let nelems = List.length es in
    let size = max 1 (nelems * site.Tast.site_elem_size) in
    fun st fr ->
      let vs = eval_list_copy ces st fr in
      let cells = Array.of_list (List.map Value.cell vs) in
      let obj =
        alloc_obj st fr ~site ~category:Rt.Metrics.Cat_slice ~size
          ~payload:(Value.Pcells cells)
      in
      pin st fr
        (Value.VSlice
           { Value.s_addr = obj.Rt.Heap.addr; s_cells = cells; s_off = 0;
             s_len = nelems })
  | Tast.Tstruct_lit (_, es) ->
    let ces = List.map (compile_expr ctx) es in
    fun st fr ->
      Value.VStruct
        (Array.of_list (List.map Value.cell (eval_list_copy ces st fr)))
  | Tast.Taddr_struct_lit (site, _, es) ->
    let ces = List.map (compile_expr ctx) es in
    let size = max 8 site.Tast.site_elem_size in
    fun st fr ->
      let v =
        Value.VStruct
          (Array.of_list (List.map Value.cell (eval_list_copy ces st fr)))
      in
      let c = Value.cell v in
      let obj =
        alloc_obj st fr ~site ~category:Rt.Metrics.Cat_other ~size
          ~payload:(Value.Pcells [| c |])
      in
      pin st fr (Value.VPtr { Value.p_owner = obj.Rt.Heap.addr; p_cell = c })
  | Tast.Tappend (site, s, vs) ->
    let cs = compile_expr ctx s in
    let cvs = List.map (compile_expr ctx) vs in
    fun st fr ->
      let base = cs st fr in
      let elems = eval_list_copy cvs st fr in
      eval_append st fr ~site base elems
  | Tast.Tlen a ->
    let ca = compile_expr ctx a in
    fun st fr ->
      (match ca st fr with
      | Value.VSlice s -> Value.VInt s.Value.s_len
      | Value.VStr s -> Value.VInt (String.length s)
      | Value.VMap addr -> Value.VInt (map_len st addr)
      | Value.VNil -> Value.VInt 0
      | _ -> raise (Runtime_error "len of unsupported value"))
  | Tast.Tcap a ->
    let ca = compile_expr ctx a in
    fun st fr ->
      (match ca st fr with
      | Value.VSlice s ->
        Value.VInt (Array.length s.Value.s_cells - s.Value.s_off)
      | Value.VNil -> Value.VInt 0
      | _ -> raise (Runtime_error "cap of unsupported value"))
  | Tast.Titoa a ->
    let ca = compile_expr ctx a in
    fun st fr -> Value.VStr (string_of_int (as_int (ca st fr)))
  | Tast.Trand a ->
    let ca = compile_expr ctx a in
    fun st fr -> Value.VInt (rand_int st (as_int (ca st fr)))
  | Tast.Tsubstr (s, a, b) ->
    let cstr = compile_expr ctx s in
    let ca = compile_expr ctx a and cb = compile_expr ctx b in
    fun st fr ->
      (match cstr st fr with
      | Value.VStr s ->
        let lo = as_int (ca st fr) in
        let hi = as_int (cb st fr) in
        if lo < 0 || hi > String.length s || lo > hi then
          raise (Panic (Value.VStr "substr out of range"))
        else Value.VStr (String.sub s lo (hi - lo))
      | _ -> raise (Runtime_error "substr on non-string"))
  | Tast.Tslice_sub (a, lo, hi) ->
    let ca = compile_expr ctx a in
    let clo = Option.map (compile_expr ctx) lo in
    let chi = Option.map (compile_expr ctx) hi in
    fun st fr ->
      let base = ca st fr in
      let bound default = function
        | Some c -> as_int (c st fr)
        | None -> default
      in
      (match base with
      | Value.VSlice s ->
        let cap = Array.length s.Value.s_cells - s.Value.s_off in
        let lo = bound 0 clo in
        let hi = bound s.Value.s_len chi in
        if lo < 0 || hi > cap || lo > hi then
          raise (Panic (Value.VStr "slice bounds out of range"));
        Value.VSlice
          { s with Value.s_off = s.Value.s_off + lo; s_len = hi - lo }
      | Value.VStr str ->
        let lo = bound 0 clo in
        let hi = bound (String.length str) chi in
        if lo < 0 || hi > String.length str || lo > hi then
          raise (Panic (Value.VStr "slice bounds out of range"));
        Value.VStr (String.sub str lo (hi - lo))
      | Value.VNil ->
        let lo = bound 0 clo and hi = bound 0 chi in
        if lo <> 0 || hi <> 0 then
          raise (Panic (Value.VStr "slice bounds out of range"));
        Value.VNil
      | _ -> raise (Runtime_error "slice of unsupported value"))
  | Tast.Tcopy (dst, src) ->
    let cd = compile_expr ctx dst and cs = compile_expr ctx src in
    fun st fr ->
      let vd = cd st fr in
      let vs = cs st fr in
      (match (vd, vs) with
      | Value.VSlice d, Value.VSlice s ->
        (* memmove semantics: snapshot the source first *)
        let n = min d.Value.s_len s.Value.s_len in
        let snapshot =
          Array.init n (fun i ->
              Value.copy
                (Value.read_cell s.Value.s_cells.(s.Value.s_off + i)))
        in
        for i = 0 to n - 1 do
          d.Value.s_cells.(d.Value.s_off + i).Value.v <- snapshot.(i)
        done;
        Value.VInt n
      | (Value.VNil, _ | _, Value.VNil) -> Value.VInt 0
      | _ -> raise (Runtime_error "copy on non-slices"))
  | Tast.Tmap_get_ok (m, k) ->
    let cm = compile_expr ctx m and ck = compile_expr ctx k in
    let tenv = ctx.tenv in
    let zty =
      match e.Tast.ty with Types.Tuple [ vt; _ ] -> Some vt | _ -> None
    in
    let zero () =
      match zty with Some vt -> Value.zero tenv vt | None -> Value.VUnit
    in
    fun st fr ->
      let vm = cm st fr in
      let vk = ck st fr in
      (match vm with
      | Value.VMap addr ->
        let present = ref true in
        let v =
          map_get st addr vk ~zero:(fun () ->
              present := false;
              zero ())
        in
        Value.VTuple [ v; Value.VBool !present ]
      | Value.VNil -> Value.VTuple [ zero (); Value.VBool false ]
      | _ -> raise (Runtime_error "not a map"))
  | Tast.Trecover ->
    fun st _fr ->
      (match st.unwinding with
      | Some v ->
        st.unwinding <- None;
        Value.VStr (Value.to_string v)
      | None -> Value.VStr "")

(* Address-of (mirrors [Interp.eval_addr]). *)
and compile_addr ctx (lv : Tast.lvalue) : ev =
  match lv with
  | Tast.Lvar v ->
    let cb = compile_var_binding ctx v in
    fun st fr ->
      (match cb st fr with
      | Bdirect c -> Value.VPtr { Value.p_owner = 0; p_cell = c }
      | Bboxed (addr, c) -> Value.VPtr { Value.p_owner = addr; p_cell = c }
      | Bunbound -> raise (Runtime_error "unbound variable"))
  | Tast.Lderef e -> compile_expr ctx e
  | Tast.Lindex (a, i) ->
    let ca = compile_expr ctx a and ci = compile_expr ctx i in
    fun st fr ->
      let va = ca st fr in
      let vi = as_int (ci st fr) in
      (match va with
      | Value.VSlice s ->
        if vi < 0 || vi >= s.Value.s_len then
          raise (Panic (Value.VStr "index out of range"));
        Value.VPtr
          { Value.p_owner = s.Value.s_addr;
            p_cell = s.Value.s_cells.(s.Value.s_off + vi) }
      | _ -> raise (Runtime_error "cannot take address of this element"))
  | Tast.Lmap _ ->
    fun _ _ -> raise (Runtime_error "cannot take address of map element")
  | Tast.Lfield (base, idx, _) -> begin
    match base.Tast.ty with
    | Types.Ptr _ ->
      (* pointer base: the field cell lives inside the pointee *)
      let cbase = compile_expr ctx base in
      fun st fr ->
        (match cbase st fr with
        | Value.VPtr p -> begin
          match Value.read_cell p.Value.p_cell with
          | Value.VStruct cells ->
            Value.VPtr
              { Value.p_owner = p.Value.p_owner; p_cell = cells.(idx) }
          | _ -> raise (Runtime_error "field of non-struct")
        end
        | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
        | _ -> raise (Runtime_error "field of non-pointer"))
    | _ -> begin
      match base.Tast.desc with
      | Tast.Tvar v ->
        (* struct-valued variable: its storage without copying *)
        let cb = compile_var_binding ctx v in
        fun st fr ->
          let c, owner =
            match cb st fr with
            | Bdirect c -> (c, 0)
            | Bboxed (addr, c) -> (c, addr)
            | Bunbound -> raise (Runtime_error "unbound variable")
          in
          (match Value.read_cell c with
          | Value.VStruct cells ->
            Value.VPtr { Value.p_owner = owner; p_cell = cells.(idx) }
          | _ -> raise (Runtime_error "field of non-struct"))
      | _ ->
        (* nested struct value: VStruct shares its cells, so evaluating
           the base still aliases the storage; the owner computation
           re-evaluates the base's spine, exactly like the reference
           walker's [owner_of_struct_base] *)
        let cbase = compile_expr ctx base in
        let cowner = compile_struct_owner ctx base in
        fun st fr ->
          (match cbase st fr with
          | Value.VStruct cells ->
            let owner = cowner st fr in
            Value.VPtr { Value.p_owner = owner; p_cell = cells.(idx) }
          | _ -> raise (Runtime_error "field of non-struct"))
    end
  end

(* Mirrors [Interp.owner_of_struct_base], including which subexpressions
   it (re-)evaluates. *)
and compile_struct_owner ctx (e : Tast.expr) : state -> frame -> int =
  match e.Tast.desc with
  | Tast.Tfield (inner, _, _) -> begin
    match inner.Tast.ty with
    | Types.Ptr _ ->
      let cinner = compile_expr ctx inner in
      fun st fr ->
        (match cinner st fr with Value.VPtr p -> p.Value.p_owner | _ -> 0)
    | _ -> compile_struct_owner ctx inner
  end
  | Tast.Tindex (arr, _) ->
    let carr = compile_expr ctx arr in
    fun st fr ->
      (match carr st fr with Value.VSlice s -> s.Value.s_addr | _ -> 0)
  | Tast.Tderef p ->
    let cp = compile_expr ctx p in
    fun st fr ->
      (match cp st fr with Value.VPtr ptr -> ptr.Value.p_owner | _ -> 0)
  | _ -> fun _ _ -> 0

(* Assignment: resolve the target, then write (the caller evaluates the
   right-hand side *first*, like the reference walker). *)
and compile_assign ctx (lv : Tast.lvalue) :
    state -> frame -> Value.value -> unit =
  match lv with
  | Tast.Lvar v ->
    let cb = compile_var_binding ctx v in
    fun st fr value -> (binding_cell (cb st fr)).Value.v <- Value.copy value
  | Tast.Lderef e ->
    let ce = compile_expr ctx e in
    fun st fr value ->
      (match ce st fr with
      | Value.VPtr p -> p.Value.p_cell.Value.v <- Value.copy value
      | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
      | _ -> raise (Runtime_error "assignment through non-pointer"))
  | Tast.Lindex (a, i) ->
    let ca = compile_expr ctx a and ci = compile_expr ctx i in
    fun st fr value ->
      let va = ca st fr in
      let vi = as_int (ci st fr) in
      (match va with
      | Value.VSlice s ->
        if vi < 0 || vi >= s.Value.s_len then
          raise (Panic (Value.VStr "index out of range"));
        s.Value.s_cells.(s.Value.s_off + vi).Value.v <- Value.copy value
      | Value.VNil -> raise (Panic (Value.VStr "index of nil slice"))
      | _ -> raise (Runtime_error "cannot assign into this value"))
  | Tast.Lmap (m, k) ->
    let cm = compile_expr ctx m and ck = compile_expr ctx k in
    fun st fr value ->
      let vm = cm st fr in
      let vk = ck st fr in
      (match vm with
      | Value.VMap addr -> map_store st addr vk (Value.copy value)
      | Value.VNil ->
        raise (Panic (Value.VStr "assignment to entry in nil map"))
      | _ -> raise (Runtime_error "not a map"))
  | Tast.Lfield (base, idx, _) ->
    let caddr = compile_addr ctx (Tast.Lfield (base, idx, "")) in
    fun st fr value ->
      (match caddr st fr with
      | Value.VPtr p -> p.Value.p_cell.Value.v <- Value.copy value
      | _ -> raise (Runtime_error "bad field target"))

and compile_stmt ctx (s : Tast.stmt) : ex =
  match s with
  | Tast.Sdecl (v, init) -> begin
    let decl = compile_declare ctx v in
    match init with
    | Some e ->
      let ce = compile_expr ctx e in
      fun st fr ->
        safepoint st;
        decl st fr (Value.copy (ce st fr))
    | None ->
      let tenv = ctx.tenv in
      let ty = v.Tast.v_ty in
      fun st fr ->
        safepoint st;
        decl st fr (Value.zero tenv ty)
  end
  | Tast.Smulti_decl (vars, e) ->
    let decls = List.map (compile_declare ctx) vars in
    let n = List.length vars in
    let ce = compile_expr ctx e in
    fun st fr ->
      safepoint st;
      (match ce st fr with
      | Value.VTuple vs when List.length vs = n ->
        List.iter2 (fun d value -> d st fr (Value.copy value)) decls vs
      | _ -> raise (Runtime_error "multi-value declaration mismatch"))
  | Tast.Sassign (lv, e) ->
    let ce = compile_expr ctx e in
    let casgn = compile_assign ctx lv in
    fun st fr ->
      safepoint st;
      (* right-hand side first, then target resolution *)
      let v = ce st fr in
      casgn st fr v
  | Tast.Smulti_assign (lvs, e) ->
    let casgns = List.map (compile_assign ctx) lvs in
    let n = List.length lvs in
    let ce = compile_expr ctx e in
    fun st fr ->
      safepoint st;
      (match ce st fr with
      | Value.VTuple vs when List.length vs = n ->
        List.iter2 (fun casgn v -> casgn st fr v) casgns vs
      | _ -> raise (Runtime_error "multi-value assignment mismatch"))
  | Tast.Sexpr e ->
    let ce = compile_expr ctx e in
    fun st fr ->
      safepoint st;
      ignore (ce st fr)
  | Tast.Sif (c, b1, b2) -> begin
    let cc = compile_expr ctx c in
    let cb1 = compile_block ctx b1 in
    match b2 with
    | Some b2 ->
      let cb2 = compile_block ctx b2 in
      fun st fr ->
        safepoint st;
        if truthy (cc st fr) then cb1 st fr else cb2 st fr
    | None ->
      fun st fr ->
        safepoint st;
        if truthy (cc st fr) then cb1 st fr
  end
  | Tast.Sfor (init, cond, post, body) ->
    let cinit = Option.map (compile_stmt ctx) init in
    let ccond = Option.map (compile_expr ctx) cond in
    let cpost = Option.map (compile_stmt ctx) post in
    let cbody = compile_block ctx body in
    let run_post st fr =
      match cpost with Some c -> c st fr | None -> ()
    in
    fun st fr ->
      safepoint st;
      ignore (push_scope st fr);
      let cleanup f =
        match f () with
        | x ->
          pop_scope st fr;
          x
        | exception e ->
          pop_scope st fr;
          raise e
      in
      cleanup (fun () ->
          (match cinit with Some c -> c st fr | None -> ());
          let rec loop () =
            safepoint st;
            let continue_loop =
              match ccond with Some c -> truthy (c st fr) | None -> true
            in
            if continue_loop then begin
              (match cbody st fr with
              | () -> run_post st fr
              | exception Break_loop -> raise Exit
              | exception Continue_loop -> run_post st fr);
              loop ()
            end
          in
          try loop () with Exit -> ())
  | Tast.Sforrange_map (v, m, body) ->
    let cm = compile_expr ctx m in
    let decl = compile_declare ctx v in
    let cbody = compile_block ctx body in
    fun st fr ->
      safepoint st;
      (match cm st fr with
      | Value.VMap addr ->
        let keys = map_range_keys st addr in
        (try
           List.iter
             (fun key ->
               safepoint st;
               decl st fr (Value.copy key);
               match cbody st fr with
               | () -> ()
               | exception Break_loop -> raise Exit
               | exception Continue_loop -> ())
             keys
         with Exit -> ())
      | Value.VNil -> ()
      | _ -> raise (Runtime_error "range over non-map"))
  | Tast.Sreturn es ->
    let ces = List.map (compile_expr ctx) es in
    fun st fr ->
      safepoint st;
      raise (Return_values (eval_list_copy ces st fr))
  | Tast.Sblock b ->
    let cb = compile_block ctx b in
    fun st fr ->
      safepoint st;
      cb st fr
  | Tast.Sgo (name, args) -> begin
    let cargs = List.map (compile_expr ctx) args in
    match Layout.func_id ctx.layout name with
    | Some fid ->
      fun st fr ->
        safepoint st;
        spawn_goroutine st fid (eval_list_copy cargs st fr)
    | None ->
      let err = "undefined function " ^ name in
      fun st fr ->
        safepoint st;
        ignore (eval_list_copy cargs st fr);
        raise (Runtime_error err)
  end
  | Tast.Sdefer (name, args) -> begin
    let cargs = List.map (compile_expr ctx) args in
    match Layout.func_id ctx.layout name with
    | Some fid ->
      fun st fr ->
        safepoint st;
        let args = eval_list_copy cargs st fr in
        fr.defers <- (fid, args) :: fr.defers
    | None ->
      let err = "undefined function " ^ name in
      fun st fr ->
        safepoint st;
        ignore (eval_list_copy cargs st fr);
        raise (Runtime_error err)
  end
  | Tast.Spanic e ->
    let ce = compile_expr ctx e in
    fun st fr ->
      safepoint st;
      raise (Panic (ce st fr))
  | Tast.Sbreak ->
    fun st _fr ->
      safepoint st;
      raise Break_loop
  | Tast.Scontinue ->
    fun st _fr ->
      safepoint st;
      raise Continue_loop
  | Tast.Sdelete (m, k) ->
    let cm = compile_expr ctx m and ck = compile_expr ctx k in
    fun st fr ->
      safepoint st;
      let vm = cm st fr in
      let vk = ck st fr in
      (match vm with
      | Value.VMap addr -> map_delete st addr vk
      | Value.VNil -> ()
      | _ -> raise (Runtime_error "delete on non-map"))
  | Tast.Sprint es ->
    let ces = List.map (compile_expr ctx) es in
    fun st fr ->
      safepoint st;
      let parts = List.map (fun c -> Value.to_string (c st fr)) ces in
      emit_str st (String.concat " " parts ^ "\n")
  | Tast.Stcfree (v, kind) ->
    if v.Tast.v_kind = Tast.Vglobal then fun st _fr -> safepoint st
    else begin
      let s = Layout.slot ctx.layout v in
      fun st fr ->
        safepoint st;
        match fr.slots.(s) with
        | Bunbound -> ()  (* declaration never executed on this path *)
        | b -> tcfree_binding st b kind
    end

and compile_block ctx (b : Tast.block) : ex =
  let stmts = Array.of_list (List.map (compile_stmt ctx) b.Tast.b_stmts) in
  let n = Array.length stmts in
  fun st fr ->
    ignore (push_scope st fr);
    match
      for i = 0 to n - 1 do
        stmts.(i) st fr
      done
    with
    | () -> pop_scope st fr
    | exception e ->
      pop_scope st fr;
      raise e

let compile_func ctx (f : Tast.func) fid : cfunc =
  let pdecls = List.map (compile_declare ctx) f.Tast.f_params in
  let body = compile_block ctx f.Tast.f_body in
  let tenv = ctx.tenv in
  let rtys = f.Tast.f_results in
  {
    cf_fn = f;
    cf_nslots = ctx.layout.Layout.l_nslots.(fid);
    cf_bind =
      (fun st fr args ->
        List.iter2 (fun d arg -> d st fr (Value.copy arg)) pdecls args);
    cf_body = (fun st fr -> body st fr);
    cf_zeros = (fun _st -> List.map (fun ty -> Value.zero tenv ty) rtys);
  }

let lower (program : Tast.program) (decisions : Decisions.t)
    (layout : Layout.t) : t =
  let module Trace = Gofree_obs.Trace in
  Trace.with_span ~tid:(Trace.domain_tid ()) "lower" (fun () ->
      let ctx = { tenv = program.Tast.p_tenv; decisions; layout } in
      Array.mapi (fun i f -> compile_func ctx f i) layout.Layout.l_funcs)

let dispatch (code : t) : state -> int -> Value.value list -> Value.value list
    =
 fun st fid args ->
  let c = code.(fid) in
  call_fn st c.cf_fn ~nslots:c.cf_nslots ~bind:c.cf_bind ~body:c.cf_body
    ~zeros:c.cf_zeros args

let install (st : state) (code : t) = st.dispatch <- dispatch code
