(** Emission pass: compiles the {!Layout}-resolved typed AST to the flat
    bytecode of {!Bytecode}, once per program.

    Operands are resolved at emission time: variables to frame/global
    slot indices, callees to interned function ids, jump targets to
    absolute code offsets (with jump-to-jump chains threaded).  The
    emitter is type-directed: expressions of type [int]/[bool] evaluate
    on the VM's unboxed native-int stack, everything else on the boxed
    value stack, with explicit box/unbox instructions at the boundary.

    Rare constructs (nested struct-field address spines, break outside a
    loop) fall back to closures built by {!Compile}, so the long tail
    shares the closure engine's single audited semantics.  Hot
    constructs get dedicated opcodes whose {!Vm} implementations
    replicate {!Compile} line by line — the differential suite holds the
    two lowered engines and the reference walker to byte-identical
    observable behaviour. *)

open Minigo
module B = Bytecode

(* Growable int vector (the code buffer). *)
type ivec = { mutable iv_a : int array; mutable iv_n : int }

let ivec () = { iv_a = Array.make 128 0; iv_n = 0 }

let ipush v x =
  if v.iv_n = Array.length v.iv_a then begin
    let a = Array.make (2 * v.iv_n) 0 in
    Array.blit v.iv_a 0 a 0 v.iv_n;
    v.iv_a <- a
  end;
  v.iv_a.(v.iv_n) <- x;
  v.iv_n <- v.iv_n + 1

(* Append-only side table accumulated in reverse. *)
type 'a tbl = { mutable t_items : 'a list; mutable t_n : int }

let tbl () = { t_items = []; t_n = 0 }

let tbl_add t x =
  let i = t.t_n in
  t.t_items <- x :: t.t_items;
  t.t_n <- i + 1;
  i

let tbl_array t = Array.of_list (List.rev t.t_items)

(* What an enclosing scope is, for break/continue/scope-pop emission. *)
type scope_kind =
  | Kblock
  | Kfor of int * int  (* exit label (pops the for scope), post label *)
  | Krange of int * int  (* next label, end label *)

type fctx = {
  ctx : Compile.ctx;
  code : ivec;
  consts : Value.value tbl;
  sites : Tast.alloc_site tbl;
  zeros : (unit -> Value.value) tbl;
  binops : Ast.binop tbl;
  names : string tbl;
  names_tbl : (string, int) Hashtbl.t;
  decls : (Interp.state -> Interp.frame -> Value.value -> unit) tbl;
  assigns : (Interp.state -> Interp.frame -> Value.value -> unit) tbl;
  thunks : (Interp.state -> Interp.frame -> Value.value) tbl;
  mutable ncaches : int;
  mutable labels : int array;  (* label id -> code offset, -1 unset *)
  mutable nlabels : int;
  mutable patches : (int * int) list;  (* code offset to patch, label *)
  mutable scopes : scope_kind list;
  mutable cur_v : int;
  mutable max_v : int;
  mutable cur_i : int;
  mutable max_i : int;
  mutable last_pos : int;
      (* code offset of the last emitted opcode, or -1 after a label
         mark; lets the branch emitter fuse an immediately preceding
         compare into one compare-and-branch instruction *)
}

let fctx ctx =
  {
    ctx;
    code = ivec ();
    consts = tbl ();
    sites = tbl ();
    zeros = tbl ();
    binops = tbl ();
    names = tbl ();
    names_tbl = Hashtbl.create 16;
    decls = tbl ();
    assigns = tbl ();
    thunks = tbl ();
    ncaches = 0;
    labels = Array.make 16 (-1);
    nlabels = 0;
    patches = [];
    scopes = [];
    cur_v = 0;
    max_v = 0;
    cur_i = 0;
    max_i = 0;
    last_pos = -1;
  }

(* Operand-stack effect of every emitted instruction, tracked statically
   so the VM can pre-size both stacks from the function header. *)
let adj f dv di =
  f.cur_v <- f.cur_v + dv;
  if f.cur_v > f.max_v then f.max_v <- f.cur_v;
  f.cur_i <- f.cur_i + di;
  if f.cur_i > f.max_i then f.max_i <- f.cur_i

let op0 f ~dv ~di op =
  f.last_pos <- f.code.iv_n;
  ipush f.code op;
  adj f dv di

let op1 f ~dv ~di op a =
  f.last_pos <- f.code.iv_n;
  ipush f.code op;
  ipush f.code a;
  adj f dv di

let op2 f ~dv ~di op a b =
  f.last_pos <- f.code.iv_n;
  ipush f.code op;
  ipush f.code a;
  ipush f.code b;
  adj f dv di

let op3 f ~dv ~di op a b c =
  f.last_pos <- f.code.iv_n;
  ipush f.code op;
  ipush f.code a;
  ipush f.code b;
  ipush f.code c;
  adj f dv di

let opn f ~dv ~di op operands =
  f.last_pos <- f.code.iv_n;
  ipush f.code op;
  List.iter (fun x -> ipush f.code x) operands;
  adj f dv di

let new_label f =
  if f.nlabels = Array.length f.labels then begin
    let a = Array.make (2 * f.nlabels) (-1) in
    Array.blit f.labels 0 a 0 f.nlabels;
    f.labels <- a
  end;
  let l = f.nlabels in
  f.nlabels <- l + 1;
  l

let mark f l =
  f.labels.(l) <- f.code.iv_n;
  (* a label may now point here, so the next branch must not rewrite
     the preceding instruction in place *)
  f.last_pos <- -1

(* Emit a jump-family instruction: [pre] operands first, then the label
   operand (recorded for patching). *)
let opjmp f ~dv ~di op pre l =
  f.last_pos <- f.code.iv_n;
  ipush f.code op;
  List.iter (fun x -> ipush f.code x) pre;
  f.patches <- (f.code.iv_n, l) :: f.patches;
  ipush f.code 0;
  adj f dv di

(* Emit [jmpifnot l], fusing an immediately preceding integer compare
   (plain or constant-operand) into one compare-and-branch
   superinstruction.  Safe because [mark] resets [last_pos], so no
   label can point at the branch being absorbed, and opcode values are
   unique, so the width + opcode-range check proves the preceding words
   really are that compare. *)
let opjmpifnot f l =
  let code = f.code in
  let p = f.last_pos in
  let fused =
    p >= 0
    &&
    let op = code.iv_a.(p) in
    if p = code.iv_n - 1 && op >= B.op_lt_i && op <= B.op_ne_i then begin
      code.iv_a.(p) <- B.op_jlt_not + (op - B.op_lt_i);
      true
    end
    else if p = code.iv_n - 2 && op >= B.op_ltk_i && op <= B.op_nek_i
    then begin
      code.iv_a.(p) <- B.op_jltk_not + (op - B.op_ltk_i);
      true
    end
    else false
  in
  if fused then begin
    f.patches <- (code.iv_n, l) :: f.patches;
    ipush code 0;
    f.last_pos <- -1;
    (* the compare already accounted its own pop; the branch pops the
       flag the fused form never materializes *)
    adj f 0 (-1)
  end
  else opjmp f ~dv:0 ~di:(-1) B.op_jmpifnot [] l

let name_idx f s =
  match Hashtbl.find_opt f.names_tbl s with
  | Some i -> i
  | None ->
    let i = tbl_add f.names s in
    Hashtbl.add f.names_tbl s i;
    i

let slot f v = Layout.slot f.ctx.Compile.layout v

let is_global (v : Tast.var) = v.Tast.v_kind = Tast.Vglobal

let new_cache f =
  let i = f.ncaches in
  f.ncaches <- i + 1;
  i

let is_int (e : Tast.expr) = e.Tast.ty = Types.Int

let is_bool (e : Tast.expr) = e.Tast.ty = Types.Bool

let int_binop_opcode = function
  | Ast.Badd -> Some B.op_add_i
  | Ast.Bsub -> Some B.op_sub_i
  | Ast.Bmul -> Some B.op_mul_i
  | Ast.Bdiv -> Some B.op_div_i
  | Ast.Bmod -> Some B.op_mod_i
  | Ast.Band_bits -> Some B.op_and_i
  | Ast.Bor_bits -> Some B.op_or_i
  | Ast.Bxor -> Some B.op_xor_i
  | Ast.Bshl -> Some B.op_shl_i
  | Ast.Bshr -> Some B.op_shr_i
  | _ -> None

let int_cmp_opcode = function
  | Ast.Blt -> Some B.op_lt_i
  | Ast.Ble -> Some B.op_le_i
  | Ast.Bgt -> Some B.op_gt_i
  | Ast.Bge -> Some B.op_ge_i
  | Ast.Beq -> Some B.op_eq_i
  | Ast.Bne -> Some B.op_ne_i
  | _ -> None

(* Constant-operand forms.  [divk]/[modk] keep the divide-by-zero panic
   for k = 0 inside the opcode, so fusing never changes behaviour. *)
let int_binop_k_opcode = function
  | Ast.Badd -> Some B.op_addk_i
  | Ast.Bsub -> Some B.op_subk_i
  | Ast.Bmul -> Some B.op_mulk_i
  | Ast.Bdiv -> Some B.op_divk_i
  | Ast.Bmod -> Some B.op_modk_i
  | _ -> None

let int_cmpk_opcode = function
  | Ast.Blt -> B.op_ltk_i
  | Ast.Ble -> B.op_lek_i
  | Ast.Bgt -> B.op_gtk_i
  | Ast.Bge -> B.op_gek_i
  | Ast.Beq -> B.op_eqk_i
  | Ast.Bne -> B.op_nek_i
  | _ -> assert false

(* k OP x rewritten as x OP' k (an int literal's evaluation has no
   observable effect, so the operand reorder is invisible). *)
let mirror_cmp = function
  | Ast.Blt -> Ast.Bgt
  | Ast.Ble -> Ast.Bge
  | Ast.Bgt -> Ast.Blt
  | Ast.Bge -> Ast.Ble
  | op -> op

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* [emit_i] leaves a native int on the I stack (expression type int);
   [emit_b] a 0/1 on the I stack (type bool); [emit_v] a value on the V
   stack (any type).  All three evaluate sub-expressions in exactly the
   reference walker's order.  [emit_v_raw] is the unguarded generic
   (boxed) emission every constructor supports — the fallback target of
   [emit_i]/[emit_b], so the three entry points cannot recurse through
   each other on the same expression. *)
let rec emit_i f (e : Tast.expr) =
  match e.Tast.desc with
  | Tast.Tint n -> op1 f ~dv:0 ~di:1 B.op_iconst n
  | Tast.Tvar v when is_int e ->
    let opc = if is_global v then B.op_giload else B.op_iload in
    op2 f ~dv:0 ~di:1 opc (slot f v) (name_idx f v.Tast.v_name)
  | Tast.Tbinop (op, a, b) when is_int e && int_binop_opcode op <> None
    -> begin
    match (a.Tast.desc, b.Tast.desc, int_binop_k_opcode op) with
    | _, Tast.Tint k, Some opk ->
      emit_i f a;
      op1 f ~dv:0 ~di:0 opk k
    | Tast.Tint k, _, _ when op = Ast.Badd || op = Ast.Bmul ->
      (* commutative, and an int literal's evaluation has no effects *)
      emit_i f b;
      op1 f ~dv:0 ~di:0
        (if op = Ast.Badd then B.op_addk_i else B.op_mulk_i)
        k
    | _ ->
      emit_i f a;
      emit_i f b;
      (match int_binop_opcode op with
      | Some opc -> op0 f ~dv:0 ~di:(-1) opc
      | None -> assert false)
  end
  | Tast.Tunop (Ast.Uneg, a) when is_int e ->
    emit_i f a;
    op0 f ~dv:0 ~di:0 B.op_neg_i
  | Tast.Tindex (a, i) when is_int e ->
    emit_v f a;
    emit_i f i;
    op0 f ~dv:(-1) ~di:0 B.op_index_i
  | Tast.Tmap_get (m, k) when is_int e ->
    emit_v f m;
    emit_v f k;
    let z = tbl_add f.zeros (fun () -> Value.VInt 0) in
    op2 f ~dv:(-2) ~di:1 B.op_mapget_i z (new_cache f)
  | Tast.Tfield (a, idx, name) when is_int e -> begin
    match a.Tast.desc with
    | Tast.Tvar v when not (is_global v) ->
      (* [vload; field_i] fused: one dispatch, no V-stack traffic *)
      opn f ~dv:0 ~di:1 B.op_sfield_i
        [ slot f v; idx; new_cache f; name_idx f v.Tast.v_name;
          name_idx f name ]
    | _ ->
      emit_v f a;
      op3 f ~dv:(-1) ~di:1 B.op_field_i idx (new_cache f) (name_idx f name)
  end
  | Tast.Tlen a ->
    emit_v f a;
    op0 f ~dv:(-1) ~di:1 B.op_len
  | Tast.Tcap a ->
    emit_v f a;
    op0 f ~dv:(-1) ~di:1 B.op_cap
  | Tast.Trand a ->
    emit_i f a;
    op0 f ~dv:0 ~di:0 B.op_rand
  | Tast.Tcopy (dst, src) ->
    emit_v f dst;
    emit_v f src;
    op0 f ~dv:(-2) ~di:1 B.op_slice_copy
  | _ ->
    emit_v_raw f e;
    op0 f ~dv:(-1) ~di:1 B.op_unbox_i

and emit_b f (e : Tast.expr) =
  match e.Tast.desc with
  | Tast.Tbool b -> op1 f ~dv:0 ~di:1 B.op_iconst (if b then 1 else 0)
  | Tast.Tvar v when is_bool e ->
    let opc = if is_global v then B.op_gbload else B.op_bload in
    op2 f ~dv:0 ~di:1 opc (slot f v) (name_idx f v.Tast.v_name)
  | Tast.Tbinop (Ast.Band, a, b) ->
    (* lazy: if a then b else false, like the reference walker *)
    emit_b f a;
    let l_false = new_label f in
    let l_end = new_label f in
    opjmpifnot f l_false;
    let base_i = f.cur_i in
    emit_b f b;
    opjmp f ~dv:0 ~di:0 B.op_jmp [] l_end;
    f.cur_i <- base_i;
    mark f l_false;
    op1 f ~dv:0 ~di:1 B.op_iconst 0;
    mark f l_end
  | Tast.Tbinop (Ast.Bor, a, b) ->
    emit_b f a;
    let l_true = new_label f in
    let l_end = new_label f in
    opjmp f ~dv:0 ~di:(-1) B.op_jmpif [] l_true;
    let base_i = f.cur_i in
    emit_b f b;
    opjmp f ~dv:0 ~di:0 B.op_jmp [] l_end;
    f.cur_i <- base_i;
    mark f l_true;
    op1 f ~dv:0 ~di:1 B.op_iconst 1;
    mark f l_end
  | Tast.Tbinop (op, a, b)
    when is_bool e && is_int a && is_int b && int_cmp_opcode op <> None
    -> begin
    match (a.Tast.desc, b.Tast.desc) with
    | _, Tast.Tint k ->
      emit_i f a;
      op1 f ~dv:0 ~di:0 (int_cmpk_opcode op) k
    | Tast.Tint k, _ ->
      emit_i f b;
      op1 f ~dv:0 ~di:0 (int_cmpk_opcode (mirror_cmp op)) k
    | _ ->
      emit_i f a;
      emit_i f b;
      (match int_cmp_opcode op with
      | Some opc -> op0 f ~dv:0 ~di:(-1) opc
      | None -> assert false)
  end
  | Tast.Tbinop ((Ast.Beq | Ast.Bne) as op, a, b)
    when is_bool e && is_bool a && is_bool b ->
    (* bool equality on the 0/1 encoding agrees with value_eq *)
    emit_b f a;
    emit_b f b;
    op0 f ~dv:0 ~di:(-1) (if op = Ast.Beq then B.op_eq_i else B.op_ne_i)
  | Tast.Tunop (Ast.Unot, a) ->
    emit_b f a;
    op0 f ~dv:0 ~di:0 B.op_not_b
  | Tast.Tindex (a, i) when is_bool e ->
    emit_v f a;
    emit_i f i;
    op0 f ~dv:(-1) ~di:0 B.op_index_b
  | Tast.Tmap_get (m, k) when is_bool e ->
    emit_v f m;
    emit_v f k;
    let z = tbl_add f.zeros (fun () -> Value.VBool false) in
    op2 f ~dv:(-2) ~di:1 B.op_mapget_b z (new_cache f)
  | Tast.Tfield (a, idx, name) when is_bool e ->
    emit_v f a;
    op3 f ~dv:(-1) ~di:1 B.op_field_b idx (new_cache f) (name_idx f name)
  | _ ->
    emit_v_raw f e;
    op0 f ~dv:(-1) ~di:1 B.op_unbox_b

and emit_v f (e : Tast.expr) =
  match e.Tast.desc with
  (* calls return boxed values already; re-boxing through the int path
     would only add work *)
  | Tast.Tcall _ -> emit_v_raw f e
  | _ when is_int e ->
    emit_i f e;
    op0 f ~dv:1 ~di:(-1) B.op_box_i
  | _ when is_bool e ->
    emit_b f e;
    op0 f ~dv:1 ~di:(-1) B.op_box_b
  | _ -> emit_v_raw f e

and emit_v_raw f (e : Tast.expr) =
  match e.Tast.desc with
  | Tast.Tint n ->
    op1 f ~dv:0 ~di:1 B.op_iconst n;
    op0 f ~dv:1 ~di:(-1) B.op_box_i
  | Tast.Tbool b ->
    op1 f ~dv:0 ~di:1 B.op_iconst (if b then 1 else 0);
    op0 f ~dv:1 ~di:(-1) B.op_box_b
  | Tast.Tfloat x ->
    op1 f ~dv:1 ~di:0 B.op_const (tbl_add f.consts (Value.VFloat x))
  | Tast.Tstring s ->
    op1 f ~dv:1 ~di:0 B.op_const (tbl_add f.consts (Value.VStr s))
  | Tast.Tnil -> op1 f ~dv:1 ~di:0 B.op_const (tbl_add f.consts Value.VNil)
  | Tast.Tvar v ->
    let opc = if is_global v then B.op_gvload else B.op_vload in
    op2 f ~dv:1 ~di:0 opc (slot f v) (name_idx f v.Tast.v_name)
  | Tast.Tbinop ((Ast.Band | Ast.Bor), _, _) | Tast.Tunop (Ast.Unot, _) ->
    (* boolean forms with native lazy/negation emission *)
    emit_b f e;
    op0 f ~dv:1 ~di:(-1) B.op_box_b
  | Tast.Tbinop (op, a, b) ->
    emit_v f a;
    emit_v f b;
    op1 f ~dv:(-1) ~di:0 B.op_binop (tbl_add f.binops op)
  | Tast.Tunop (Ast.Uneg, a) ->
    emit_v f a;
    op0 f ~dv:0 ~di:0 B.op_neg_v
  | Tast.Taddr lv -> emit_addr f lv
  | Tast.Tderef a ->
    emit_v f a;
    op0 f ~dv:0 ~di:0 B.op_deref
  | Tast.Tindex (a, i) ->
    emit_v f a;
    emit_i f i;
    op0 f ~dv:0 ~di:(-1) B.op_index_v
  | Tast.Tmap_get (m, k) ->
    emit_v f m;
    emit_v f k;
    let tenv = f.ctx.Compile.tenv in
    let ty = e.Tast.ty in
    let z = tbl_add f.zeros (fun () -> Value.zero tenv ty) in
    op2 f ~dv:(-1) ~di:0 B.op_mapget_v z (new_cache f)
  | Tast.Tfield (a, idx, name) -> begin
    match a.Tast.desc with
    | Tast.Tvar v when not (is_global v) ->
      opn f ~dv:1 ~di:0 B.op_sfield_v
        [ slot f v; idx; new_cache f; name_idx f v.Tast.v_name;
          name_idx f name ]
    | _ ->
      emit_v f a;
      op3 f ~dv:0 ~di:0 B.op_field_v idx (new_cache f) (name_idx f name)
  end
  | Tast.Tcall (name, args) -> begin
    List.iter (fun a -> emit_v f a) args;
    let n = List.length args in
    match Layout.func_id f.ctx.Compile.layout name with
    | Some fid -> op2 f ~dv:(1 - n) ~di:0 B.op_call fid n
    | None -> op2 f ~dv:(1 - n) ~di:0 B.op_call_undef (name_idx f name) n
  end
  | Tast.Tmake_slice (site, elem, len, cap) -> begin
    let tenv = f.ctx.Compile.tenv in
    let z = tbl_add f.zeros (fun () -> Value.zero tenv elem) in
    let s = tbl_add f.sites site in
    emit_i f len;
    (* negative-length panic precedes the capacity evaluation *)
    op0 f ~dv:0 ~di:0 B.op_check_len;
    match cap with
    | Some cap ->
      emit_i f cap;
      op3 f ~dv:1 ~di:(-2) B.op_make_slice s z 1
    | None -> op3 f ~dv:1 ~di:(-1) B.op_make_slice s z 0
  end
  | Tast.Tmake_map (site, _, _) ->
    op1 f ~dv:1 ~di:0 B.op_make_map (tbl_add f.sites site)
  | Tast.Tnew (site, ty) ->
    let tenv = f.ctx.Compile.tenv in
    let z = tbl_add f.zeros (fun () -> Value.zero tenv ty) in
    op2 f ~dv:1 ~di:0 B.op_new (tbl_add f.sites site) z
  | Tast.Tslice_lit (site, _, es) ->
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_copy)
      es;
    let n = List.length es in
    op2 f ~dv:(1 - n) ~di:0 B.op_slice_lit (tbl_add f.sites site) n
  | Tast.Tstruct_lit (_, es) ->
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_copy)
      es;
    let n = List.length es in
    op1 f ~dv:(1 - n) ~di:0 B.op_struct_lit n
  | Tast.Taddr_struct_lit (site, _, es) ->
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_copy)
      es;
    let n = List.length es in
    op2 f ~dv:(1 - n) ~di:0 B.op_addr_struct_lit (tbl_add f.sites site) n
  | Tast.Tappend (site, s, vs) ->
    emit_v f s;
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_copy)
      vs;
    let n = List.length vs in
    op2 f ~dv:(-n) ~di:0 B.op_append (tbl_add f.sites site) n
  | Tast.Tlen a ->
    emit_v f a;
    op0 f ~dv:(-1) ~di:1 B.op_len;
    op0 f ~dv:1 ~di:(-1) B.op_box_i
  | Tast.Tcap a ->
    emit_v f a;
    op0 f ~dv:(-1) ~di:1 B.op_cap;
    op0 f ~dv:1 ~di:(-1) B.op_box_i
  | Tast.Titoa a ->
    emit_i f a;
    op0 f ~dv:1 ~di:(-1) B.op_itoa
  | Tast.Trand a ->
    emit_i f a;
    op0 f ~dv:0 ~di:0 B.op_rand;
    op0 f ~dv:1 ~di:(-1) B.op_box_i
  | Tast.Tsubstr (s, a, b) ->
    emit_v f s;
    emit_i f a;
    emit_i f b;
    op0 f ~dv:0 ~di:(-2) B.op_substr
  | Tast.Tslice_sub (a, lo, hi) ->
    emit_v f a;
    let flags = ref 0 in
    (match lo with
    | Some lo ->
      emit_i f lo;
      flags := !flags lor 1
    | None -> ());
    (match hi with
    | Some hi ->
      emit_i f hi;
      flags := !flags lor 2
    | None -> ());
    let di = -((!flags land 1) + (!flags lsr 1)) in
    op1 f ~dv:0 ~di B.op_slice_sub !flags
  | Tast.Tcopy (dst, src) ->
    emit_v f dst;
    emit_v f src;
    op0 f ~dv:(-2) ~di:1 B.op_slice_copy;
    op0 f ~dv:1 ~di:(-1) B.op_box_i
  | Tast.Tmap_get_ok (m, k) ->
    emit_v f m;
    emit_v f k;
    let tenv = f.ctx.Compile.tenv in
    let zty =
      match e.Tast.ty with Types.Tuple [ vt; _ ] -> Some vt | _ -> None
    in
    let z =
      tbl_add f.zeros (fun () ->
          match zty with
          | Some vt -> Value.zero tenv vt
          | None -> Value.VUnit)
    in
    op1 f ~dv:(-1) ~di:0 B.op_mapget_ok z
  | Tast.Trecover -> op0 f ~dv:1 ~di:0 B.op_recover

(* Address-of an lvalue, mirroring Compile.compile_addr case for case;
   the nested struct-value spine falls back to the shared closure. *)
and emit_addr f (lv : Tast.lvalue) =
  match lv with
  | Tast.Lvar v ->
    let opc = if is_global v then B.op_addr_gslot else B.op_addr_slot in
    op2 f ~dv:1 ~di:0 opc (slot f v) (name_idx f v.Tast.v_name)
  | Tast.Lderef e -> emit_v f e
  | Tast.Lindex (a, i) ->
    emit_v f a;
    emit_i f i;
    op0 f ~dv:0 ~di:(-1) B.op_addr_index
  | Tast.Lmap _ ->
    let t =
      tbl_add f.thunks (fun _ _ ->
          raise (Interp.Runtime_error "cannot take address of map element"))
    in
    op1 f ~dv:1 ~di:0 B.op_thunk_v t
  | Tast.Lfield (base, idx, _) -> begin
    match base.Tast.ty with
    | Types.Ptr _ ->
      emit_v f base;
      op1 f ~dv:0 ~di:0 B.op_addr_field_ptr idx
    | _ -> begin
      match base.Tast.desc with
      | Tast.Tvar v ->
        let opc =
          if is_global v then B.op_addr_field_gslot else B.op_addr_field_slot
        in
        op3 f ~dv:1 ~di:0 opc (slot f v) idx (name_idx f v.Tast.v_name)
      | _ ->
        (* nested struct-value base: owner spine re-evaluation, shared
           with the closure engine *)
        let t = tbl_add f.thunks (Compile.compile_addr f.ctx lv) in
        op1 f ~dv:1 ~di:0 B.op_thunk_v t
    end
  end

(* Store the value on top of the V stack into an lvalue: resolve the
   target (its sub-expressions evaluate now, after the right-hand side,
   like the reference walker), then write with a copy. *)
and emit_assign f (lv : Tast.lvalue) =
  match lv with
  | Tast.Lvar v ->
    let opc = if is_global v then B.op_store_gslot else B.op_store_slot in
    op2 f ~dv:(-1) ~di:0 opc (slot f v) (name_idx f v.Tast.v_name)
  | Tast.Lderef e ->
    emit_v f e;
    op0 f ~dv:(-2) ~di:0 B.op_store_deref
  | Tast.Lindex (a, i) ->
    emit_v f a;
    emit_i f i;
    op0 f ~dv:(-2) ~di:(-1) B.op_store_index
  | Tast.Lmap (m, k) ->
    emit_v f m;
    emit_v f k;
    op0 f ~dv:(-3) ~di:0 B.op_store_map
  | Tast.Lfield _ ->
    emit_addr f lv;
    op0 f ~dv:(-2) ~di:0 B.op_store_thru

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let free_kind_code = function
  | Tast.Free_slice -> 0
  | Tast.Free_map -> 1
  | Tast.Free_obj -> 2

(* Recognize [v = v + k] / [v = k + v] / [v = v - k] on a local int
   variable: the whole statement collapses to one in-place [iinc]. *)
let iinc_delta f (v : Tast.var) (e : Tast.expr) : int option =
  if is_global v then None
  else
    let same (a : Tast.expr) =
      match a.Tast.desc with
      | Tast.Tvar v2 -> (not (is_global v2)) && slot f v2 = slot f v
      | _ -> false
    in
    match e.Tast.desc with
    | Tast.Tbinop (Ast.Badd, a, { Tast.desc = Tast.Tint k; _ }) when same a
      ->
      Some k
    | Tast.Tbinop (Ast.Badd, { Tast.desc = Tast.Tint k; _ }, b) when same b
      ->
      Some k
    | Tast.Tbinop (Ast.Bsub, a, { Tast.desc = Tast.Tint k; _ }) when same a
      ->
      Some (-k)
    | _ -> None

let rec emit_stmt f (s : Tast.stmt) =
  match s with
  | Tast.Sdecl (v, init) -> begin
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    let d = tbl_add f.decls (Compile.compile_declare f.ctx v) in
    match init with
    | Some e ->
      emit_v f e;
      op0 f ~dv:0 ~di:0 B.op_copy;
      op1 f ~dv:(-1) ~di:0 B.op_decl d
    | None ->
      let tenv = f.ctx.Compile.tenv in
      let ty = v.Tast.v_ty in
      let z = tbl_add f.zeros (fun () -> Value.zero tenv ty) in
      op2 f ~dv:0 ~di:0 B.op_decl_zero d z
  end
  | Tast.Smulti_decl (vars, e) ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_v f e;
    let n = List.length vars in
    op2 f ~dv:0 ~di:0 B.op_tuple_check n 0;
    List.iteri
      (fun i v ->
        let d = tbl_add f.decls (Compile.compile_declare f.ctx v) in
        op1 f ~dv:1 ~di:0 B.op_tuple_get i;
        op0 f ~dv:0 ~di:0 B.op_copy;
        op1 f ~dv:(-1) ~di:0 B.op_decl d)
      vars;
    op0 f ~dv:(-1) ~di:0 B.op_pop_v
  | Tast.Sassign (lv, e) -> begin
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    (* right-hand side first, then target resolution *)
    match lv with
    | Tast.Lvar v when iinc_delta f v e <> None -> begin
      match iinc_delta f v e with
      | Some k ->
        op3 f ~dv:0 ~di:0 B.op_iinc (slot f v) k (name_idx f v.Tast.v_name)
      | None -> assert false
    end
    | Tast.Lfield (base, fidx, _)
      when is_int e
           && (match e.Tast.desc with Tast.Tcall _ -> false | _ -> true)
           && (match base.Tast.ty with Types.Ptr _ -> true | _ -> false) ->
      (* RHS on the int stack, base pointer on the value stack, then
         the fused [addr_field_ptr; store_thru]: no boxed int and no
         interior VPtr record *)
      emit_i f e;
      emit_v f base;
      op1 f ~dv:(-1) ~di:(-1) B.op_fstore_i fidx
    | Tast.Lvar v
      when is_int e
           && (match e.Tast.desc with Tast.Tcall _ -> false | _ -> true) ->
      emit_i f e;
      let opc =
        if is_global v then B.op_store_gslot_i else B.op_store_slot_i
      in
      op2 f ~dv:0 ~di:(-1) opc (slot f v) (name_idx f v.Tast.v_name)
    | Tast.Lvar v
      when is_bool e
           && (match e.Tast.desc with Tast.Tcall _ -> false | _ -> true) ->
      emit_b f e;
      let opc =
        if is_global v then B.op_store_gslot_b else B.op_store_slot_b
      in
      op2 f ~dv:0 ~di:(-1) opc (slot f v) (name_idx f v.Tast.v_name)
    | _ ->
      emit_v f e;
      emit_assign f lv
  end
  | Tast.Smulti_assign (lvs, e) ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_v f e;
    let n = List.length lvs in
    op2 f ~dv:0 ~di:0 B.op_tuple_check n 1;
    List.iteri
      (fun i lv ->
        op1 f ~dv:1 ~di:0 B.op_tuple_get i;
        emit_assign f lv)
      lvs;
    op0 f ~dv:(-1) ~di:0 B.op_pop_v
  | Tast.Sexpr e ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_v f e;
    op0 f ~dv:(-1) ~di:0 B.op_pop_v
  | Tast.Sif (c, b1, b2) -> begin
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_b f c;
    match b2 with
    | None ->
      let l_end = new_label f in
      opjmpifnot f l_end;
      emit_block f b1;
      mark f l_end
    | Some b2 ->
      let l_else = new_label f in
      let l_end = new_label f in
      opjmpifnot f l_else;
      emit_block f b1;
      opjmp f ~dv:0 ~di:0 B.op_jmp [] l_end;
      mark f l_else;
      emit_block f b2;
      mark f l_end
  end
  | Tast.Sfor (init, cond, post, body) ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    op0 f ~dv:0 ~di:0 B.op_push_scope;
    let l_head = new_label f in
    let l_post = new_label f in
    let l_exit = new_label f in
    f.scopes <- Kfor (l_exit, l_post) :: f.scopes;
    (match init with Some s -> emit_stmt f s | None -> ());
    mark f l_head;
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    (match cond with
    | Some c ->
      emit_b f c;
      opjmpifnot f l_exit
    | None -> ());
    emit_block f body;
    mark f l_post;
    (match post with Some s -> emit_stmt f s | None -> ());
    opjmp f ~dv:0 ~di:0 B.op_jmp [] l_head;
    mark f l_exit;
    op0 f ~dv:0 ~di:0 B.op_pop_scope;
    f.scopes <- List.tl f.scopes
  | Tast.Sforrange_map (v, m, body) ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_v f m;
    let l_next = new_label f in
    let l_end = new_label f in
    opjmp f ~dv:(-1) ~di:0 B.op_range_start [] l_end;
    f.scopes <- Krange (l_next, l_end) :: f.scopes;
    let d = tbl_add f.decls (Compile.compile_declare f.ctx v) in
    mark f l_next;
    opjmp f ~dv:0 ~di:0 B.op_range_next [ d ] l_end;
    emit_block f body;
    opjmp f ~dv:0 ~di:0 B.op_jmp [] l_next;
    mark f l_end;
    f.scopes <- List.tl f.scopes
  | Tast.Sreturn es ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_copy)
      es;
    let n = List.length es in
    (* open scopes are popped by the VM's unwind handler, in the same
       innermost-first order the nested closure handlers would use *)
    op1 f ~dv:(-n) ~di:0 B.op_ret n
  | Tast.Sblock b ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_block f b
  | Tast.Sgo (name, args) -> begin
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_copy)
      args;
    let n = List.length args in
    match Layout.func_id f.ctx.Compile.layout name with
    | Some fid -> op2 f ~dv:(-n) ~di:0 B.op_go fid n
    | None -> op2 f ~dv:(-n) ~di:0 B.op_go_undef (name_idx f name) n
  end
  | Tast.Sdefer (name, args) -> begin
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_copy)
      args;
    let n = List.length args in
    match Layout.func_id f.ctx.Compile.layout name with
    | Some fid -> op2 f ~dv:(-n) ~di:0 B.op_defer fid n
    | None -> op2 f ~dv:(-n) ~di:0 B.op_defer_undef (name_idx f name) n
  end
  | Tast.Spanic e ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_v f e;
    op0 f ~dv:(-1) ~di:0 B.op_panic
  | Tast.Sbreak -> begin
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    (* pop the block scopes between here and the loop; the loop's own
       scope (Sfor) pops at its exit label *)
    let rec unwind = function
      | Kblock :: rest ->
        op0 f ~dv:0 ~di:0 B.op_pop_scope;
        unwind rest
      | Kfor (l_exit, _) :: _ -> opjmp f ~dv:0 ~di:0 B.op_jmp [] l_exit
      | Krange (_, l_end) :: _ ->
        op0 f ~dv:0 ~di:0 B.op_range_pop;
        opjmp f ~dv:0 ~di:0 B.op_jmp [] l_end
      | [] ->
        (* break outside any loop: unreachable after parsing, but keep
           the reference behaviour (Break_loop escapes) *)
        let t = tbl_add f.thunks (fun _ _ -> raise Interp.Break_loop) in
        op1 f ~dv:1 ~di:0 B.op_thunk_v t;
        op0 f ~dv:(-1) ~di:0 B.op_pop_v
    in
    unwind f.scopes
  end
  | Tast.Scontinue -> begin
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    let rec unwind = function
      | Kblock :: rest ->
        op0 f ~dv:0 ~di:0 B.op_pop_scope;
        unwind rest
      | Kfor (_, l_post) :: _ -> opjmp f ~dv:0 ~di:0 B.op_jmp [] l_post
      | Krange (l_next, _) :: _ -> opjmp f ~dv:0 ~di:0 B.op_jmp [] l_next
      | [] ->
        let t = tbl_add f.thunks (fun _ _ -> raise Interp.Continue_loop) in
        op1 f ~dv:1 ~di:0 B.op_thunk_v t;
        op0 f ~dv:(-1) ~di:0 B.op_pop_v
    in
    unwind f.scopes
  end
  | Tast.Sdelete (m, k) ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    emit_v f m;
    emit_v f k;
    op0 f ~dv:(-2) ~di:0 B.op_delete
  | Tast.Sprint es ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    List.iter
      (fun e ->
        emit_v f e;
        op0 f ~dv:0 ~di:0 B.op_tostr)
      es;
    op1 f ~dv:(-List.length es) ~di:0 B.op_print (List.length es)
  | Tast.Stcfree (v, kind) ->
    op0 f ~dv:0 ~di:0 B.op_safepoint;
    if v.Tast.v_kind <> Tast.Vglobal then
      op2 f ~dv:0 ~di:0 B.op_tcfree (slot f v) (free_kind_code kind)

and emit_block f (b : Tast.block) =
  op0 f ~dv:0 ~di:0 B.op_push_scope;
  f.scopes <- Kblock :: f.scopes;
  List.iter (fun s -> emit_stmt f s) b.Tast.b_stmts;
  op0 f ~dv:0 ~di:0 B.op_pop_scope;
  f.scopes <- List.tl f.scopes

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

(* Patch label operands, then thread jump-to-jump chains so a branch
   landing on an unconditional [jmp] goes straight to its final
   destination. *)
let patch_and_thread f =
  let code = f.code.iv_a in
  List.iter (fun (pos, l) -> code.(pos) <- f.labels.(l)) f.patches;
  let resolve target =
    let t = ref target in
    let hops = ref 0 in
    while !hops < 64 && !t < f.code.iv_n && code.(!t) = B.op_jmp do
      t := code.(!t + 1);
      incr hops
    done;
    !t
  in
  List.iter (fun (pos, _) -> code.(pos) <- resolve code.(pos)) f.patches

let emit_func (ctx : Compile.ctx) (fn : Tast.func) fid : B.fn =
  let f = fctx ctx in
  emit_block f fn.Tast.f_body;
  op0 f ~dv:0 ~di:0 B.op_halt;
  patch_and_thread f;
  let pdecls = List.map (Compile.compile_declare ctx) fn.Tast.f_params in
  let tenv = ctx.Compile.tenv in
  let rtys = fn.Tast.f_results in
  {
    B.bf_fn = fn;
    bf_name = fn.Tast.f_name;
    bf_nslots = ctx.Compile.layout.Layout.l_nslots.(fid);
    bf_max_v = f.max_v;
    bf_max_i = f.max_i;
    bf_code = Array.sub f.code.iv_a 0 f.code.iv_n;
    bf_consts = tbl_array f.consts;
    bf_sites = tbl_array f.sites;
    bf_zeros = tbl_array f.zeros;
    bf_binops = tbl_array f.binops;
    bf_names = tbl_array f.names;
    bf_decls = tbl_array f.decls;
    bf_assigns = tbl_array f.assigns;
    bf_thunks = tbl_array f.thunks;
    bf_caches = Array.init f.ncaches (fun _ -> B.fresh_cache ());
    bf_bind =
      (fun st fr args ->
        List.iter2 (fun d arg -> d st fr (Value.copy arg)) pdecls args);
    bf_zeros_ret = (fun _st -> List.map (fun ty -> Value.zero tenv ty) rtys);
  }

(** Lower every function of the program to bytecode (emits an ["emit"]
    trace span next to parse/typecheck/escape/instrument/lower). *)
let lower (program : Tast.program) (decisions : Decisions.t)
    (layout : Layout.t) : B.program =
  let module Trace = Gofree_obs.Trace in
  Trace.with_span ~tid:(Trace.domain_tid ()) "emit" (fun () ->
      let ctx = { Compile.tenv = program.Tast.p_tenv; decisions; layout } in
      Array.mapi (fun i fn -> emit_func ctx fn i) layout.Layout.l_funcs)
