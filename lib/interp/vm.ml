(** The bytecode dispatch loop: the third execution engine.

    Each call runs one flat [int array] ({!Bytecode.fn}) over two
    operand stacks — boxed values and unboxed native ints (MiniGo ints
    and bools), so hot arithmetic/compare/branch sequences never touch
    the OCaml allocator.  Map-key and struct-field sites carry
    monomorphic inline caches; a map-site hit returns the same physical
    value a full lookup would find, guarded by the header address
    (never reused) and [md_version] (bumped on every
    store/delete/grow/free).  A same-map different-key miss still skips
    both heap-object lookups by probing the cached bucket array
    directly.

    The dispatch loop is registerized: the program counter and both
    stack pointers are parameters of a self-tail-recursive top-level
    function, so they live in registers and every opcode ends in a jump
    rather than a call; stack and code accesses are unchecked.  That is
    safe because the emitter precomputes exact operand-stack bounds
    ([bf_max_v]/[bf_max_i]) and every jump operand is a patched label —
    invariants the differential suite exercises end to end.  Everything
    else the loop needs travels in one mutable {!regs} record, the only
    allocation a call makes beyond the shared frame: the operand stacks
    themselves are LIFO windows carved out of per-goroutine pooled
    arrays ([g_stk_v]/[g_stk_i]).  Calls within a goroutine are
    strictly LIFO even across yields, and the windows are dead at every
    safepoint and invisible to the simulated GC, so pooling cannot
    change observable behaviour.

    Every opcode's implementation replicates the corresponding
    {!Compile} closure line by line and calls the same shared {!Interp}
    helpers in the same order, so allocation counts, free attempts, GC
    cycle points and scheduler interleavings are bit-identical across
    all three engines.  The opcode numbering is frozen in {!Bytecode};
    the literal patterns below must stay in sync. *)

open Minigo
module B = Bytecode
module Rt = Gofree_runtime

open Interp

(* Everything the dispatch loop needs besides pc and the two stack
   pointers.  One of these is the only per-call allocation. *)
type regs = {
  x_f : B.fn;
  x_st : state;
  x_fr : frame;
  x_code : int array;
  x_stk_v : Value.value array;  (* this call's window of g_stk_v *)
  x_stk_i : int array;  (* this call's window of g_stk_i *)
  x_slots : binding array;
  mutable x_scopes : int;  (* open lexical scopes, for the unwind path *)
  mutable x_iters : Value.value list list;
      (* active range-loop key iterators, innermost first *)
}

let unbound_local (r : regs) nidx =
  raise (Runtime_error ("unbound variable " ^ r.x_f.B.bf_names.(nidx)))

let unbound_global (r : regs) nidx =
  raise (Runtime_error ("unbound global " ^ r.x_f.B.bf_names.(nidx)))

(* The rare tail of {!Interp.safepoint}, reached only when one of the
   fast-path guards fired; [st.steps] has already been incremented and
   the frame's temps cleared.  The shared slow path also handles the
   multi-domain stop-the-world handshake. *)
let safepoint_slow (r : regs) = Interp.safepoint_slow r.x_st

(* {!Interp.safepoint}, inlined for the dispatch loop: during a VM
   body the innermost frame of the current goroutine is [r.x_fr], so
   the [cur_frame] list walk is unnecessary.  The common step touches
   three fields and falls through. *)
let vm_safepoint (r : regs) =
  let st = r.x_st in
  let steps = st.steps + 1 in
  st.steps <- steps;
  r.x_fr.temps <- [];
  let heap = st.heap in
  if
    steps >= st.yield_at || heap.Rt.Heap.gc_requested
    || heap.Rt.Heap.sampler != None
    || steps > st.config.max_steps
  then safepoint_slow r

(* The n values most recently pushed, oldest first. *)
let popped (stk_v : Value.value array) sp_v n =
  let rec build i acc =
    if i < sp_v - n then acc
    else build (i - 1) (Array.unsafe_get stk_v i :: acc)
  in
  build (sp_v - 1) []

(* Shared by the three index opcodes: the full base match of the
   reference walker, yielding the element value. *)
let index_value (va : Value.value) (vi : int) : Value.value =
  match va with
  | Value.VSlice s ->
    if vi < 0 || vi >= s.Value.s_len then
      raise (Panic (Value.VStr "index out of range"));
    Value.read_cell s.Value.s_cells.(s.Value.s_off + vi)
  | Value.VStr s ->
    if vi < 0 || vi >= String.length s then
      raise (Panic (Value.VStr "index out of range"));
    Value.vint (Char.code s.[vi])
  | Value.VNil -> raise (Panic (Value.VStr "index of nil slice"))
  | _ -> raise (Runtime_error "cannot index this value")

(* Shared by the three field opcodes: base normalization (implicit
   pointer dereference), the struct-shape inline-cache bookkeeping, and
   the field read. *)
let field_value (r : regs) (va : Value.value) fidx cidx nidx : Value.value =
  let shape, base =
    match va with
    | Value.VPtr p -> (2, Value.read_cell p.Value.p_cell)
    | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
    | v -> (1, v)
  in
  match base with
  | Value.VStruct cells ->
    let st = r.x_st in
    let c = r.x_f.B.bf_caches.(cidx) in
    if c.B.c_a = shape then st.ic_hits <- st.ic_hits + 1
    else begin
      st.ic_misses <- st.ic_misses + 1;
      c.B.c_a <- shape
    end;
    Value.read_cell cells.(fidx)
  | _ ->
    raise
      (Runtime_error
         ("field access ." ^ r.x_f.B.bf_names.(nidx) ^ " on non-struct"))

(* Shared by the three map-get opcodes.  The inline cache caches the
   map's identity (header address, version, bucket array) plus one
   present (key, value) pair per site.  A hit needs the same header
   address, an unchanged version and an equal key, and yields the
   cached value — the identical physical value the bucket search would
   find (map reads never allocate, so no heap event is skipped).  When
   the map matches but the key differs, the cached bucket array is by
   construction the map's current one, so the probe runs on it directly
   and skips the header and buckets object lookups.  Absent keys never
   populate the (key, value) pair: their zero value is freshly made per
   read. *)
let rec bucket_probe vk entries =
  match entries with
  | [] -> None
  | (k, v) :: rest ->
    if Value.equal_key k vk then Some v else bucket_probe vk rest

let mapget_value (r : regs) (vm : Value.value) (vk : Value.value) zidx cidx :
    Value.value =
  match vm with
  | Value.VMap addr ->
    let st = r.x_st in
    let c = r.x_f.B.bf_caches.(cidx) in
    (* one pointer load = one coherent snapshot, even when goroutines
       on other domains are racing to repopulate this site *)
    let e = c.B.c_e in
    if e.B.ce_a = addr && e.B.ce_ver = e.B.ce_md.Value.md_version then begin
      if Value.equal_key vk e.B.ce_key then begin
        st.ic_hits <- st.ic_hits + 1;
        e.B.ce_val
      end
      else begin
        st.ic_misses <- st.ic_misses + 1;
        (* same map, same version: probe the cached buckets directly *)
        let idx =
          Value.hash_key vk land max_int mod e.B.ce_md.Value.md_nbuckets
        in
        match bucket_probe vk e.B.ce_b.(idx) with
        | Some v ->
          c.B.c_e <- { e with B.ce_key = vk; ce_val = v };
          v
        | None -> r.x_f.B.bf_zeros.(zidx) ()
      end
    end
    else begin
      st.ic_misses <- st.ic_misses + 1;
      (* the same probe + bucket search as Interp.map_get *)
      let md, buckets = Interp.map_data st addr in
      let idx = Value.hash_key vk land max_int mod md.Value.md_nbuckets in
      let fill ~key ~v =
        c.B.c_e <-
          { B.ce_a = addr; ce_md = md; ce_ver = md.Value.md_version;
            ce_key = key; ce_val = v; ce_b = buckets }
      in
      match bucket_probe vk buckets.(idx) with
      | Some v ->
        fill ~key:vk ~v;
        v
      | None ->
        (* remember the map but no pair; VUnit never equals a key *)
        fill ~key:Value.VUnit ~v:Value.VUnit;
        r.x_f.B.bf_zeros.(zidx) ()
    end
  | Value.VNil -> r.x_f.B.bf_zeros.(zidx) ()
  | _ -> raise (Runtime_error "not a map")

let rec loop (r : regs) pc sp_v sp_i =
  let code = r.x_code in
  let stk_v = r.x_stk_v in
  let stk_i = r.x_stk_i in
  match Array.unsafe_get code pc with
  | 0 (* halt *) -> ()
  | 1 (* safepoint *) ->
    vm_safepoint r;
    loop r (pc + 1) sp_v sp_i
  | 2 (* jmp *) -> loop r (Array.unsafe_get code (pc + 1)) sp_v sp_i
  | 3 (* jmpifnot *) ->
    if Array.unsafe_get stk_i (sp_i - 1) = 0 then
      loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 1)
    else loop r (pc + 2) sp_v (sp_i - 1)
  | 4 (* jmpif *) ->
    if Array.unsafe_get stk_i (sp_i - 1) <> 0 then
      loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 1)
    else loop r (pc + 2) sp_v (sp_i - 1)
  | 5 (* push_scope *) ->
    ignore (push_scope r.x_st r.x_fr);
    r.x_scopes <- r.x_scopes + 1;
    loop r (pc + 1) sp_v sp_i
  | 6 (* pop_scope *) ->
    pop_scope r.x_st r.x_fr;
    r.x_scopes <- r.x_scopes - 1;
    loop r (pc + 1) sp_v sp_i
  | 7 (* ret *) ->
    raise (Return_values (popped stk_v sp_v (Array.unsafe_get code (pc + 1))))
  | 8 (* iconst *) ->
    Array.unsafe_set stk_i sp_i (Array.unsafe_get code (pc + 1));
    loop r (pc + 2) sp_v (sp_i + 1)
  | 9 (* const *) ->
    Array.unsafe_set stk_v sp_v
      r.x_f.B.bf_consts.(Array.unsafe_get code (pc + 1));
    loop r (pc + 2) (sp_v + 1) sp_i
  | 10 (* iload *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      (match c.Value.v with
      | Value.VInt n -> Array.unsafe_set stk_i sp_i n
      | _ -> Array.unsafe_set stk_i sp_i (as_int (Value.read_cell c)));
      loop r (pc + 3) sp_v (sp_i + 1)
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 2))
  end
  | 11 (* bload *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      (match c.Value.v with
      | Value.VBool b -> Array.unsafe_set stk_i sp_i (if b then 1 else 0)
      | _ ->
        Array.unsafe_set stk_i sp_i
          (if truthy (Value.read_cell c) then 1 else 0));
      loop r (pc + 3) sp_v (sp_i + 1)
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 2))
  end
  | 12 (* vload *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      (* Value.read_cell, inlined *)
      (match c.Value.v with
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | v -> Array.unsafe_set stk_v sp_v v);
      loop r (pc + 3) (sp_v + 1) sp_i
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 2))
  end
  | 13 (* giload *) -> begin
    match Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      (match c.Value.v with
      | Value.VInt n -> Array.unsafe_set stk_i sp_i n
      | _ -> Array.unsafe_set stk_i sp_i (as_int (Value.read_cell c)));
      loop r (pc + 3) sp_v (sp_i + 1)
    | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 2))
  end
  | 14 (* gbload *) -> begin
    match Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      (match c.Value.v with
      | Value.VBool b -> Array.unsafe_set stk_i sp_i (if b then 1 else 0)
      | _ ->
        Array.unsafe_set stk_i sp_i
          (if truthy (Value.read_cell c) then 1 else 0));
      loop r (pc + 3) sp_v (sp_i + 1)
    | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 2))
  end
  | 15 (* gvload *) -> begin
    match Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      (match c.Value.v with
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | v -> Array.unsafe_set stk_v sp_v v);
      loop r (pc + 3) (sp_v + 1) sp_i
    | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 2))
  end
  | 16 (* box_i *) ->
    Array.unsafe_set stk_v sp_v
      (Value.vint (Array.unsafe_get stk_i (sp_i - 1)));
    loop r (pc + 1) (sp_v + 1) (sp_i - 1)
  | 17 (* box_b *) ->
    Array.unsafe_set stk_v sp_v
      (Value.VBool (Array.unsafe_get stk_i (sp_i - 1) <> 0));
    loop r (pc + 1) (sp_v + 1) (sp_i - 1)
  | 18 (* unbox_i *) ->
    Array.unsafe_set stk_i sp_i (as_int (Array.unsafe_get stk_v (sp_v - 1)));
    loop r (pc + 1) (sp_v - 1) (sp_i + 1)
  | 19 (* unbox_b *) ->
    Array.unsafe_set stk_i sp_i
      (if truthy (Array.unsafe_get stk_v (sp_v - 1)) then 1 else 0);
    loop r (pc + 1) (sp_v - 1) (sp_i + 1)
  | 20 (* copy *) ->
    Array.unsafe_set stk_v (sp_v - 1)
      (Value.copy (Array.unsafe_get stk_v (sp_v - 1)));
    loop r (pc + 1) sp_v sp_i
  | 21 (* pop_v *) -> loop r (pc + 1) (sp_v - 1) sp_i
  | 22 (* pop_i *) -> loop r (pc + 1) sp_v (sp_i - 1)
  | 23 (* add_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (Array.unsafe_get stk_i (sp_i - 2) + Array.unsafe_get stk_i (sp_i - 1));
    loop r (pc + 1) sp_v (sp_i - 1)
  | 24 (* sub_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (Array.unsafe_get stk_i (sp_i - 2) - Array.unsafe_get stk_i (sp_i - 1));
    loop r (pc + 1) sp_v (sp_i - 1)
  | 25 (* mul_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (Array.unsafe_get stk_i (sp_i - 2) * Array.unsafe_get stk_i (sp_i - 1));
    loop r (pc + 1) sp_v (sp_i - 1)
  | 26 (* div_i *) ->
    let b = Array.unsafe_get stk_i (sp_i - 1) in
    if b = 0 then raise (Panic (Value.VStr "integer divide by zero"));
    Array.unsafe_set stk_i (sp_i - 2) (Array.unsafe_get stk_i (sp_i - 2) / b);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 27 (* mod_i *) ->
    let b = Array.unsafe_get stk_i (sp_i - 1) in
    if b = 0 then raise (Panic (Value.VStr "integer divide by zero"));
    Array.unsafe_set stk_i (sp_i - 2)
      (Array.unsafe_get stk_i (sp_i - 2) mod b);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 28 (* and_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (Array.unsafe_get stk_i (sp_i - 2)
      land Array.unsafe_get stk_i (sp_i - 1));
    loop r (pc + 1) sp_v (sp_i - 1)
  | 29 (* or_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (Array.unsafe_get stk_i (sp_i - 2)
      lor Array.unsafe_get stk_i (sp_i - 1));
    loop r (pc + 1) sp_v (sp_i - 1)
  | 30 (* xor_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (Array.unsafe_get stk_i (sp_i - 2)
      lxor Array.unsafe_get stk_i (sp_i - 1));
    loop r (pc + 1) sp_v (sp_i - 1)
  | 31 (* shl_i *) ->
    let b = Array.unsafe_get stk_i (sp_i - 1) in
    if b < 0 then raise (Panic (Value.VStr "negative shift amount"));
    Array.unsafe_set stk_i (sp_i - 2)
      (if b >= 63 then 0 else Array.unsafe_get stk_i (sp_i - 2) lsl b);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 32 (* shr_i *) ->
    let b = Array.unsafe_get stk_i (sp_i - 1) in
    if b < 0 then raise (Panic (Value.VStr "negative shift amount"));
    Array.unsafe_set stk_i (sp_i - 2)
      (if b >= 63 then 0 else Array.unsafe_get stk_i (sp_i - 2) asr b);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 33 (* neg_i *) ->
    Array.unsafe_set stk_i (sp_i - 1) (-Array.unsafe_get stk_i (sp_i - 1));
    loop r (pc + 1) sp_v sp_i
  | 34 (* lt_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (if Array.unsafe_get stk_i (sp_i - 2) < Array.unsafe_get stk_i (sp_i - 1)
       then 1
       else 0);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 35 (* le_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (if
         Array.unsafe_get stk_i (sp_i - 2)
         <= Array.unsafe_get stk_i (sp_i - 1)
       then 1
       else 0);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 36 (* gt_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (if Array.unsafe_get stk_i (sp_i - 2) > Array.unsafe_get stk_i (sp_i - 1)
       then 1
       else 0);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 37 (* ge_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (if
         Array.unsafe_get stk_i (sp_i - 2)
         >= Array.unsafe_get stk_i (sp_i - 1)
       then 1
       else 0);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 38 (* eq_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (if Array.unsafe_get stk_i (sp_i - 2) = Array.unsafe_get stk_i (sp_i - 1)
       then 1
       else 0);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 39 (* ne_i *) ->
    Array.unsafe_set stk_i (sp_i - 2)
      (if
         Array.unsafe_get stk_i (sp_i - 2)
         <> Array.unsafe_get stk_i (sp_i - 1)
       then 1
       else 0);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 40 (* not_b *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (Array.unsafe_get stk_i (sp_i - 1) lxor 1);
    loop r (pc + 1) sp_v sp_i
  | 41 (* binop *) ->
    let vb = Array.unsafe_get stk_v (sp_v - 1) in
    let va = Array.unsafe_get stk_v (sp_v - 2) in
    Array.unsafe_set stk_v (sp_v - 2)
      (eval_binop r.x_f.B.bf_binops.(Array.unsafe_get code (pc + 1)) va vb);
    loop r (pc + 2) (sp_v - 1) sp_i
  | 42 (* neg_v *) ->
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VInt n -> Array.unsafe_set stk_v (sp_v - 1) (Value.VInt (-n))
    | Value.VFloat x -> Array.unsafe_set stk_v (sp_v - 1) (Value.VFloat (-.x))
    | _ -> raise (Runtime_error "cannot negate"));
    loop r (pc + 1) sp_v sp_i
  | 43 (* decl *) ->
    r.x_f.B.bf_decls.(Array.unsafe_get code (pc + 1)) r.x_st r.x_fr
      (Array.unsafe_get stk_v (sp_v - 1));
    loop r (pc + 2) (sp_v - 1) sp_i
  | 44 (* decl_zero *) ->
    r.x_f.B.bf_decls.(Array.unsafe_get code (pc + 1)) r.x_st r.x_fr
      (r.x_f.B.bf_zeros.(Array.unsafe_get code (pc + 2)) ());
    loop r (pc + 3) sp_v sp_i
  | 45 (* store_slot *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      c.Value.v <- Value.copy (Array.unsafe_get stk_v (sp_v - 1));
      loop r (pc + 3) (sp_v - 1) sp_i
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 2))
  end
  | 46 (* store_gslot *) -> begin
    match Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      c.Value.v <- Value.copy (Array.unsafe_get stk_v (sp_v - 1));
      loop r (pc + 3) (sp_v - 1) sp_i
    | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 2))
  end
  | 47 (* store_slot_i *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      c.Value.v <- Value.vint (Array.unsafe_get stk_i (sp_i - 1));
      loop r (pc + 3) sp_v (sp_i - 1)
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 2))
  end
  | 48 (* store_gslot_i *) -> begin
    match Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      c.Value.v <- Value.vint (Array.unsafe_get stk_i (sp_i - 1));
      loop r (pc + 3) sp_v (sp_i - 1)
    | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 2))
  end
  | 49 (* store_slot_b *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      c.Value.v <- Value.VBool (Array.unsafe_get stk_i (sp_i - 1) <> 0);
      loop r (pc + 3) sp_v (sp_i - 1)
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 2))
  end
  | 50 (* store_gslot_b *) -> begin
    match Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      c.Value.v <- Value.VBool (Array.unsafe_get stk_i (sp_i - 1) <> 0);
      loop r (pc + 3) sp_v (sp_i - 1)
    | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 2))
  end
  | 51 (* store_deref *) ->
    let p = Array.unsafe_get stk_v (sp_v - 1) in
    let v = Array.unsafe_get stk_v (sp_v - 2) in
    (match p with
    | Value.VPtr p -> p.Value.p_cell.Value.v <- Value.copy v
    | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
    | _ -> raise (Runtime_error "assignment through non-pointer"));
    loop r (pc + 1) (sp_v - 2) sp_i
  | 52 (* store_index *) ->
    let vi = Array.unsafe_get stk_i (sp_i - 1) in
    let va = Array.unsafe_get stk_v (sp_v - 1) in
    let v = Array.unsafe_get stk_v (sp_v - 2) in
    (match va with
    | Value.VSlice s ->
      if vi < 0 || vi >= s.Value.s_len then
        raise (Panic (Value.VStr "index out of range"));
      s.Value.s_cells.(s.Value.s_off + vi).Value.v <- Value.copy v
    | Value.VNil -> raise (Panic (Value.VStr "index of nil slice"))
    | _ -> raise (Runtime_error "cannot assign into this value"));
    loop r (pc + 1) (sp_v - 2) (sp_i - 1)
  | 53 (* store_map *) ->
    let vk = Array.unsafe_get stk_v (sp_v - 1) in
    let vm = Array.unsafe_get stk_v (sp_v - 2) in
    let v = Array.unsafe_get stk_v (sp_v - 3) in
    (match vm with
    | Value.VMap addr -> map_store r.x_st addr vk (Value.copy v)
    | Value.VNil -> raise (Panic (Value.VStr "assignment to entry in nil map"))
    | _ -> raise (Runtime_error "not a map"));
    loop r (pc + 1) (sp_v - 3) sp_i
  | 54 (* store_thru *) ->
    let p = Array.unsafe_get stk_v (sp_v - 1) in
    let v = Array.unsafe_get stk_v (sp_v - 2) in
    (match p with
    | Value.VPtr p -> p.Value.p_cell.Value.v <- Value.copy v
    | _ -> raise (Runtime_error "bad field target"));
    loop r (pc + 1) (sp_v - 2) sp_i
  | 55 (* index_v *) ->
    let vi = Array.unsafe_get stk_i (sp_i - 1) in
    let va = Array.unsafe_get stk_v (sp_v - 1) in
    Array.unsafe_set stk_v (sp_v - 1) (index_value va vi);
    loop r (pc + 1) sp_v (sp_i - 1)
  | 56 (* index_i *) ->
    let vi = Array.unsafe_get stk_i (sp_i - 1) in
    let va = Array.unsafe_get stk_v (sp_v - 1) in
    (* the common case inlined: int element of a live slice *)
    (match va with
    | Value.VSlice s when vi >= 0 && vi < s.Value.s_len -> begin
      let c = Array.unsafe_get s.Value.s_cells (s.Value.s_off + vi) in
      match c.Value.v with
      | Value.VInt n -> Array.unsafe_set stk_i (sp_i - 1) n
      | _ -> Array.unsafe_set stk_i (sp_i - 1) (as_int (Value.read_cell c))
    end
    | Value.VStr s when vi >= 0 && vi < String.length s ->
      (* byte of a string, sans the boxed VInt the generic path makes *)
      Array.unsafe_set stk_i (sp_i - 1) (Char.code (String.unsafe_get s vi))
    | _ -> Array.unsafe_set stk_i (sp_i - 1) (as_int (index_value va vi)));
    loop r (pc + 1) (sp_v - 1) sp_i
  | 57 (* index_b *) ->
    let vi = Array.unsafe_get stk_i (sp_i - 1) in
    let va = Array.unsafe_get stk_v (sp_v - 1) in
    Array.unsafe_set stk_i (sp_i - 1)
      (if truthy (index_value va vi) then 1 else 0);
    loop r (pc + 1) (sp_v - 1) sp_i
  | 58 (* field_v *) -> begin
    (* field_value, inlined for the two cached shapes *)
    match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VPtr p -> begin
      match p.Value.p_cell.Value.v with
      | Value.VStruct cells ->
        let st = r.x_st in
        let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 2)) in
        if c.B.c_a = 2 then st.ic_hits <- st.ic_hits + 1
        else begin
          st.ic_misses <- st.ic_misses + 1;
          c.B.c_a <- 2
        end;
        (match cells.(Array.unsafe_get code (pc + 1)).Value.v with
        | Value.VPoison -> raise (Value.Corruption "read of freed memory")
        | v -> Array.unsafe_set stk_v (sp_v - 1) v);
        loop r (pc + 4) sp_v sp_i
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | _ ->
        raise
          (Runtime_error
             ("field access ."
             ^ r.x_f.B.bf_names.(Array.unsafe_get code (pc + 3))
             ^ " on non-struct"))
    end
    | Value.VStruct cells ->
      let st = r.x_st in
      let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 2)) in
      if c.B.c_a = 1 then st.ic_hits <- st.ic_hits + 1
      else begin
        st.ic_misses <- st.ic_misses + 1;
        c.B.c_a <- 1
      end;
      (match cells.(Array.unsafe_get code (pc + 1)).Value.v with
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | v -> Array.unsafe_set stk_v (sp_v - 1) v);
      loop r (pc + 4) sp_v sp_i
    | va ->
      Array.unsafe_set stk_v (sp_v - 1)
        (field_value r va
           (Array.unsafe_get code (pc + 1))
           (Array.unsafe_get code (pc + 2))
           (Array.unsafe_get code (pc + 3)));
      loop r (pc + 4) sp_v sp_i
  end
  | 59 (* field_i *) -> begin
    match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VPtr p -> begin
      match p.Value.p_cell.Value.v with
      | Value.VStruct cells ->
        let st = r.x_st in
        let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 2)) in
        if c.B.c_a = 2 then st.ic_hits <- st.ic_hits + 1
        else begin
          st.ic_misses <- st.ic_misses + 1;
          c.B.c_a <- 2
        end;
        (match cells.(Array.unsafe_get code (pc + 1)).Value.v with
        | Value.VInt n -> Array.unsafe_set stk_i sp_i n
        | Value.VPoison -> raise (Value.Corruption "read of freed memory")
        | v -> Array.unsafe_set stk_i sp_i (as_int v));
        loop r (pc + 4) (sp_v - 1) (sp_i + 1)
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | _ ->
        raise
          (Runtime_error
             ("field access ."
             ^ r.x_f.B.bf_names.(Array.unsafe_get code (pc + 3))
             ^ " on non-struct"))
    end
    | Value.VStruct cells ->
      let st = r.x_st in
      let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 2)) in
      if c.B.c_a = 1 then st.ic_hits <- st.ic_hits + 1
      else begin
        st.ic_misses <- st.ic_misses + 1;
        c.B.c_a <- 1
      end;
      (match cells.(Array.unsafe_get code (pc + 1)).Value.v with
      | Value.VInt n -> Array.unsafe_set stk_i sp_i n
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | v -> Array.unsafe_set stk_i sp_i (as_int v));
      loop r (pc + 4) (sp_v - 1) (sp_i + 1)
    | va ->
      Array.unsafe_set stk_i sp_i
        (as_int
           (field_value r va
              (Array.unsafe_get code (pc + 1))
              (Array.unsafe_get code (pc + 2))
              (Array.unsafe_get code (pc + 3))));
      loop r (pc + 4) (sp_v - 1) (sp_i + 1)
  end
  | 60 (* field_b *) ->
    let va = Array.unsafe_get stk_v (sp_v - 1) in
    Array.unsafe_set stk_i sp_i
      (if
         truthy
           (field_value r va
              (Array.unsafe_get code (pc + 1))
              (Array.unsafe_get code (pc + 2))
              (Array.unsafe_get code (pc + 3)))
       then 1
       else 0);
    loop r (pc + 4) (sp_v - 1) (sp_i + 1)
  | 61 (* mapget_v *) ->
    let vk = Array.unsafe_get stk_v (sp_v - 1) in
    let vm = Array.unsafe_get stk_v (sp_v - 2) in
    Array.unsafe_set stk_v (sp_v - 2)
      (mapget_value r vm vk
         (Array.unsafe_get code (pc + 1))
         (Array.unsafe_get code (pc + 2)));
    loop r (pc + 3) (sp_v - 1) sp_i
  | 62 (* mapget_i *) ->
    let vk = Array.unsafe_get stk_v (sp_v - 1) in
    let vm = Array.unsafe_get stk_v (sp_v - 2) in
    Array.unsafe_set stk_i sp_i
      (as_int
         (mapget_value r vm vk
            (Array.unsafe_get code (pc + 1))
            (Array.unsafe_get code (pc + 2))));
    loop r (pc + 3) (sp_v - 2) (sp_i + 1)
  | 63 (* mapget_b *) ->
    let vk = Array.unsafe_get stk_v (sp_v - 1) in
    let vm = Array.unsafe_get stk_v (sp_v - 2) in
    Array.unsafe_set stk_i sp_i
      (if
         truthy
           (mapget_value r vm vk
              (Array.unsafe_get code (pc + 1))
              (Array.unsafe_get code (pc + 2)))
       then 1
       else 0);
    loop r (pc + 3) (sp_v - 2) (sp_i + 1)
  | 64 (* mapget_ok *) ->
    let vk = Array.unsafe_get stk_v (sp_v - 1) in
    let vm = Array.unsafe_get stk_v (sp_v - 2) in
    let zidx = Array.unsafe_get code (pc + 1) in
    let res =
      match vm with
      | Value.VMap addr ->
        let present = ref true in
        let v =
          map_get r.x_st addr vk ~zero:(fun () ->
              present := false;
              r.x_f.B.bf_zeros.(zidx) ())
        in
        Value.VTuple [ v; Value.VBool !present ]
      | Value.VNil ->
        Value.VTuple [ r.x_f.B.bf_zeros.(zidx) (); Value.VBool false ]
      | _ -> raise (Runtime_error "not a map")
    in
    Array.unsafe_set stk_v (sp_v - 2) res;
    loop r (pc + 2) (sp_v - 1) sp_i
  | 65 (* len *) ->
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VSlice s -> Array.unsafe_set stk_i sp_i s.Value.s_len
    | Value.VStr s -> Array.unsafe_set stk_i sp_i (String.length s)
    | Value.VMap addr -> Array.unsafe_set stk_i sp_i (map_len r.x_st addr)
    | Value.VNil -> Array.unsafe_set stk_i sp_i 0
    | _ -> raise (Runtime_error "len of unsupported value"));
    loop r (pc + 1) (sp_v - 1) (sp_i + 1)
  | 66 (* cap *) ->
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VSlice s ->
      Array.unsafe_set stk_i sp_i
        (Array.length s.Value.s_cells - s.Value.s_off)
    | Value.VNil -> Array.unsafe_set stk_i sp_i 0
    | _ -> raise (Runtime_error "cap of unsupported value"));
    loop r (pc + 1) (sp_v - 1) (sp_i + 1)
  | 67 (* itoa *) ->
    Array.unsafe_set stk_v sp_v
      (Value.VStr (string_of_int (Array.unsafe_get stk_i (sp_i - 1))));
    loop r (pc + 1) (sp_v + 1) (sp_i - 1)
  | 68 (* rand *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (rand_int r.x_st (Array.unsafe_get stk_i (sp_i - 1)));
    loop r (pc + 1) sp_v sp_i
  | 69 (* substr *) ->
    let hi = Array.unsafe_get stk_i (sp_i - 1) in
    let lo = Array.unsafe_get stk_i (sp_i - 2) in
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VStr s ->
      if lo < 0 || hi > String.length s || lo > hi then
        raise (Panic (Value.VStr "substr out of range"))
      else
        Array.unsafe_set stk_v (sp_v - 1)
          (Value.VStr (String.sub s lo (hi - lo)))
    | _ -> raise (Runtime_error "substr on non-string"));
    loop r (pc + 1) sp_v (sp_i - 2)
  | 70 (* slice_sub *) ->
    let flags = Array.unsafe_get code (pc + 1) in
    let npop = (flags land 1) + ((flags land 2) lsr 1) in
    let chi =
      if flags land 2 <> 0 then Some (Array.unsafe_get stk_i (sp_i - 1))
      else None
    in
    let clo =
      if flags land 1 <> 0 then Some (Array.unsafe_get stk_i (sp_i - npop))
      else None
    in
    let base = Array.unsafe_get stk_v (sp_v - 1) in
    let bound default = function Some n -> n | None -> default in
    let res =
      match base with
      | Value.VSlice s ->
        let cap = Array.length s.Value.s_cells - s.Value.s_off in
        let lo = bound 0 clo in
        let hi = bound s.Value.s_len chi in
        if lo < 0 || hi > cap || lo > hi then
          raise (Panic (Value.VStr "slice bounds out of range"));
        Value.VSlice
          { s with Value.s_off = s.Value.s_off + lo; s_len = hi - lo }
      | Value.VStr str ->
        let lo = bound 0 clo in
        let hi = bound (String.length str) chi in
        if lo < 0 || hi > String.length str || lo > hi then
          raise (Panic (Value.VStr "slice bounds out of range"));
        Value.VStr (String.sub str lo (hi - lo))
      | Value.VNil ->
        let lo = bound 0 clo and hi = bound 0 chi in
        if lo <> 0 || hi <> 0 then
          raise (Panic (Value.VStr "slice bounds out of range"));
        Value.VNil
      | _ -> raise (Runtime_error "slice of unsupported value")
    in
    Array.unsafe_set stk_v (sp_v - 1) res;
    loop r (pc + 2) sp_v (sp_i - npop)
  | 71 (* slice_copy *) ->
    let vs = Array.unsafe_get stk_v (sp_v - 1) in
    let vd = Array.unsafe_get stk_v (sp_v - 2) in
    let n =
      match (vd, vs) with
      | Value.VSlice d, Value.VSlice s ->
        (* memmove semantics: snapshot the source first *)
        let n = min d.Value.s_len s.Value.s_len in
        let snapshot =
          Array.init n (fun i ->
              Value.copy
                (Value.read_cell s.Value.s_cells.(s.Value.s_off + i)))
        in
        for i = 0 to n - 1 do
          d.Value.s_cells.(d.Value.s_off + i).Value.v <- snapshot.(i)
        done;
        n
      | Value.VNil, _ | _, Value.VNil -> 0
      | _ -> raise (Runtime_error "copy on non-slices")
    in
    Array.unsafe_set stk_i sp_i n;
    loop r (pc + 1) (sp_v - 2) (sp_i + 1)
  | 72 (* deref *) ->
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VPtr p ->
      Array.unsafe_set stk_v (sp_v - 1) (Value.read_cell p.Value.p_cell)
    | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
    | _ -> raise (Runtime_error "dereference of a non-pointer"));
    loop r (pc + 1) sp_v sp_i
  | 73 (* call *) ->
    let fid = Array.unsafe_get code (pc + 1) in
    let n = Array.unsafe_get code (pc + 2) in
    let args = popped stk_v sp_v n in
    let st = r.x_st in
    let res =
      match st.dispatch st fid args with
      | [] -> Value.VUnit
      | [ v ] -> pin st r.x_fr v
      | vs -> pin st r.x_fr (Value.VTuple vs)
    in
    Array.unsafe_set stk_v (sp_v - n) res;
    loop r (pc + 3) (sp_v - n + 1) sp_i
  | 74 (* call_undef *) ->
    raise
      (Runtime_error
         ("undefined function "
         ^ r.x_f.B.bf_names.(Array.unsafe_get code (pc + 1))))
  | 75 (* go *) ->
    let fid = Array.unsafe_get code (pc + 1) in
    let n = Array.unsafe_get code (pc + 2) in
    spawn_goroutine r.x_st fid (popped stk_v sp_v n);
    loop r (pc + 3) (sp_v - n) sp_i
  | 76 (* go_undef *) ->
    raise
      (Runtime_error
         ("undefined function "
         ^ r.x_f.B.bf_names.(Array.unsafe_get code (pc + 1))))
  | 77 (* defer *) ->
    let fid = Array.unsafe_get code (pc + 1) in
    let n = Array.unsafe_get code (pc + 2) in
    r.x_fr.defers <- (fid, popped stk_v sp_v n) :: r.x_fr.defers;
    loop r (pc + 3) (sp_v - n) sp_i
  | 78 (* defer_undef *) ->
    raise
      (Runtime_error
         ("undefined function "
         ^ r.x_f.B.bf_names.(Array.unsafe_get code (pc + 1))))
  | 79 (* check_len *) ->
    if Array.unsafe_get stk_i (sp_i - 1) < 0 then
      raise (Panic (Value.VStr "makeslice: negative length"));
    loop r (pc + 1) sp_v sp_i
  | 80 (* make_slice *) ->
    let site = r.x_f.B.bf_sites.(Array.unsafe_get code (pc + 1)) in
    let zero_of = r.x_f.B.bf_zeros.(Array.unsafe_get code (pc + 2)) in
    let has_cap = Array.unsafe_get code (pc + 3) = 1 in
    let npop = if has_cap then 2 else 1 in
    let len = Array.unsafe_get stk_i (sp_i - npop) in
    let cap = if has_cap then Array.unsafe_get stk_i (sp_i - 1) else len in
    Array.unsafe_set stk_v sp_v
      (make_slice_obj r.x_st r.x_fr ~site ~elem_size:site.Tast.site_elem_size
         ~len ~cap ~zero_of);
    loop r (pc + 4) (sp_v + 1) (sp_i - npop)
  | 81 (* make_map *) ->
    Array.unsafe_set stk_v sp_v
      (make_map_obj r.x_st r.x_fr
         ~site:r.x_f.B.bf_sites.(Array.unsafe_get code (pc + 1)));
    loop r (pc + 2) (sp_v + 1) sp_i
  | 82 (* new *) ->
    let site = r.x_f.B.bf_sites.(Array.unsafe_get code (pc + 1)) in
    let c =
      Value.cell (r.x_f.B.bf_zeros.(Array.unsafe_get code (pc + 2)) ())
    in
    let obj =
      alloc_obj r.x_st r.x_fr ~site ~category:Rt.Metrics.Cat_other
        ~size:(max 8 site.Tast.site_elem_size)
        ~payload:(Value.Pcells [| c |])
    in
    Array.unsafe_set stk_v sp_v
      (pin r.x_st r.x_fr
         (Value.VPtr { Value.p_owner = obj.Rt.Heap.addr; p_cell = c }));
    loop r (pc + 3) (sp_v + 1) sp_i
  | 83 (* slice_lit *) ->
    let site = r.x_f.B.bf_sites.(Array.unsafe_get code (pc + 1)) in
    let n = Array.unsafe_get code (pc + 2) in
    let cells = Array.of_list (List.map Value.cell (popped stk_v sp_v n)) in
    let size = max 1 (n * site.Tast.site_elem_size) in
    let obj =
      alloc_obj r.x_st r.x_fr ~site ~category:Rt.Metrics.Cat_slice ~size
        ~payload:(Value.Pcells cells)
    in
    Array.unsafe_set stk_v (sp_v - n)
      (pin r.x_st r.x_fr
         (Value.VSlice
            { Value.s_addr = obj.Rt.Heap.addr; s_cells = cells; s_off = 0;
              s_len = n }));
    loop r (pc + 3) (sp_v - n + 1) sp_i
  | 84 (* struct_lit *) ->
    let n = Array.unsafe_get code (pc + 1) in
    Array.unsafe_set stk_v (sp_v - n)
      (Value.VStruct
         (Array.of_list (List.map Value.cell (popped stk_v sp_v n))));
    loop r (pc + 2) (sp_v - n + 1) sp_i
  | 85 (* addr_struct_lit *) ->
    let site = r.x_f.B.bf_sites.(Array.unsafe_get code (pc + 1)) in
    let n = Array.unsafe_get code (pc + 2) in
    let v =
      Value.VStruct
        (Array.of_list (List.map Value.cell (popped stk_v sp_v n)))
    in
    let c = Value.cell v in
    let obj =
      alloc_obj r.x_st r.x_fr ~site ~category:Rt.Metrics.Cat_other
        ~size:(max 8 site.Tast.site_elem_size)
        ~payload:(Value.Pcells [| c |])
    in
    Array.unsafe_set stk_v (sp_v - n)
      (pin r.x_st r.x_fr
         (Value.VPtr { Value.p_owner = obj.Rt.Heap.addr; p_cell = c }));
    loop r (pc + 3) (sp_v - n + 1) sp_i
  | 86 (* append *) ->
    let site = r.x_f.B.bf_sites.(Array.unsafe_get code (pc + 1)) in
    let n = Array.unsafe_get code (pc + 2) in
    let elems = popped stk_v sp_v n in
    let base = Array.unsafe_get stk_v (sp_v - n - 1) in
    Array.unsafe_set stk_v (sp_v - n - 1)
      (eval_append r.x_st r.x_fr ~site base elems);
    loop r (pc + 3) (sp_v - n) sp_i
  | 87 (* addr_slot *) ->
    (match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c ->
      Array.unsafe_set stk_v sp_v
        (Value.VPtr { Value.p_owner = 0; p_cell = c })
    | Bboxed (addr, c) ->
      Array.unsafe_set stk_v sp_v
        (Value.VPtr { Value.p_owner = addr; p_cell = c })
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 2)));
    loop r (pc + 3) (sp_v + 1) sp_i
  | 88 (* addr_gslot *) ->
    (match Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1)) with
    | Bdirect c ->
      Array.unsafe_set stk_v sp_v
        (Value.VPtr { Value.p_owner = 0; p_cell = c })
    | Bboxed (addr, c) ->
      Array.unsafe_set stk_v sp_v
        (Value.VPtr { Value.p_owner = addr; p_cell = c })
    | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 2)));
    loop r (pc + 3) (sp_v + 1) sp_i
  | 89 (* addr_index *) ->
    let vi = Array.unsafe_get stk_i (sp_i - 1) in
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VSlice s ->
      if vi < 0 || vi >= s.Value.s_len then
        raise (Panic (Value.VStr "index out of range"));
      Array.unsafe_set stk_v (sp_v - 1)
        (Value.VPtr
           { Value.p_owner = s.Value.s_addr;
             p_cell = s.Value.s_cells.(s.Value.s_off + vi) })
    | _ -> raise (Runtime_error "cannot take address of this element"));
    loop r (pc + 1) sp_v (sp_i - 1)
  | 90 (* addr_field_ptr *) ->
    let fidx = Array.unsafe_get code (pc + 1) in
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VPtr p -> begin
      match Value.read_cell p.Value.p_cell with
      | Value.VStruct cells ->
        Array.unsafe_set stk_v (sp_v - 1)
          (Value.VPtr
             { Value.p_owner = p.Value.p_owner; p_cell = cells.(fidx) })
      | _ -> raise (Runtime_error "field of non-struct")
    end
    | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
    | _ -> raise (Runtime_error "field of non-pointer"));
    loop r (pc + 2) sp_v sp_i
  | 91 (* addr_field_slot *) ->
    let fidx = Array.unsafe_get code (pc + 2) in
    let c, owner =
      match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
      | Bdirect c -> (c, 0)
      | Bboxed (addr, c) -> (c, addr)
      | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 3))
    in
    (match Value.read_cell c with
    | Value.VStruct cells ->
      Array.unsafe_set stk_v sp_v
        (Value.VPtr { Value.p_owner = owner; p_cell = cells.(fidx) })
    | _ -> raise (Runtime_error "field of non-struct"));
    loop r (pc + 4) (sp_v + 1) sp_i
  | 92 (* addr_field_gslot *) ->
    let fidx = Array.unsafe_get code (pc + 2) in
    let c, owner =
      match
        Array.unsafe_get r.x_st.globals (Array.unsafe_get code (pc + 1))
      with
      | Bdirect c -> (c, 0)
      | Bboxed (addr, c) -> (c, addr)
      | Bunbound -> unbound_global r (Array.unsafe_get code (pc + 3))
    in
    (match Value.read_cell c with
    | Value.VStruct cells ->
      Array.unsafe_set stk_v sp_v
        (Value.VPtr { Value.p_owner = owner; p_cell = cells.(fidx) })
    | _ -> raise (Runtime_error "field of non-struct"));
    loop r (pc + 4) (sp_v + 1) sp_i
  | 93 (* tuple_check *) ->
    let n = Array.unsafe_get code (pc + 1) in
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VTuple vs when List.length vs = n -> ()
    | _ ->
      raise
        (Runtime_error
           (if Array.unsafe_get code (pc + 2) = 0 then
              "multi-value declaration mismatch"
            else "multi-value assignment mismatch")));
    loop r (pc + 3) sp_v sp_i
  | 94 (* tuple_get *) ->
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VTuple vs ->
      Array.unsafe_set stk_v sp_v
        (List.nth vs (Array.unsafe_get code (pc + 1)))
    | _ -> raise (Runtime_error "expected a tuple"));
    loop r (pc + 2) (sp_v + 1) sp_i
  | 95 (* print *) ->
    let n = Array.unsafe_get code (pc + 1) in
    let parts = List.map Value.to_string (popped stk_v sp_v n) in
    Interp.emit_str r.x_st (String.concat " " parts ^ "\n");
    loop r (pc + 2) (sp_v - n) sp_i
  | 96 (* tostr *) ->
    Array.unsafe_set stk_v (sp_v - 1)
      (Value.VStr (Value.to_string (Array.unsafe_get stk_v (sp_v - 1))));
    loop r (pc + 1) sp_v sp_i
  | 97 (* tcfree *) ->
    let s = Array.unsafe_get code (pc + 1) in
    let kind =
      match Array.unsafe_get code (pc + 2) with
      | 0 -> Tast.Free_slice
      | 1 -> Tast.Free_map
      | _ -> Tast.Free_obj
    in
    (match r.x_slots.(s) with
    | Bunbound -> ()  (* declaration never executed on this path *)
    | b -> tcfree_binding r.x_st b kind);
    loop r (pc + 3) sp_v sp_i
  | 98 (* delete *) ->
    let vk = Array.unsafe_get stk_v (sp_v - 1) in
    let vm = Array.unsafe_get stk_v (sp_v - 2) in
    (match vm with
    | Value.VMap addr -> map_delete r.x_st addr vk
    | Value.VNil -> ()
    | _ -> raise (Runtime_error "delete on non-map"));
    loop r (pc + 1) (sp_v - 2) sp_i
  | 99 (* panic *) -> raise (Panic (Array.unsafe_get stk_v (sp_v - 1)))
  | 100 (* recover *) ->
    (match r.x_st.unwinding with
    | Some v ->
      r.x_st.unwinding <- None;
      Array.unsafe_set stk_v sp_v (Value.VStr (Value.to_string v))
    | None -> Array.unsafe_set stk_v sp_v (Value.VStr ""));
    loop r (pc + 1) (sp_v + 1) sp_i
  | 101 (* range_start *) -> begin
    match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VMap addr ->
      r.x_iters <- map_range_keys r.x_st addr :: r.x_iters;
      loop r (pc + 2) (sp_v - 1) sp_i
    | Value.VNil -> loop r (Array.unsafe_get code (pc + 1)) (sp_v - 1) sp_i
    | _ -> raise (Runtime_error "range over non-map")
  end
  | 102 (* range_next *) -> begin
    match r.x_iters with
    | keys :: outer -> begin
      match keys with
      | [] ->
        r.x_iters <- outer;
        loop r (Array.unsafe_get code (pc + 2)) sp_v sp_i
      | key :: rest ->
        r.x_iters <- rest :: outer;
        vm_safepoint r;
        r.x_f.B.bf_decls.(Array.unsafe_get code (pc + 1)) r.x_st r.x_fr
          (Value.copy key);
        loop r (pc + 3) sp_v sp_i
    end
    | [] -> raise (Runtime_error "vm: range_next without iterator")
  end
  | 103 (* range_pop *) ->
    r.x_iters <- List.tl r.x_iters;
    loop r (pc + 1) sp_v sp_i
  | 104 (* thunk_v *) ->
    Array.unsafe_set stk_v sp_v
      (r.x_f.B.bf_thunks.(Array.unsafe_get code (pc + 1)) r.x_st r.x_fr);
    loop r (pc + 2) (sp_v + 1) sp_i
  | 105 (* assign_thunk *) ->
    r.x_f.B.bf_assigns.(Array.unsafe_get code (pc + 1)) r.x_st r.x_fr
      (Array.unsafe_get stk_v (sp_v - 1));
    loop r (pc + 2) (sp_v - 1) sp_i
  (* Superinstructions.  Each case is the literal composition of its
     unfused expansion above — same evaluation order, same panics. *)
  | 106 (* addk_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (Array.unsafe_get stk_i (sp_i - 1) + Array.unsafe_get code (pc + 1));
    loop r (pc + 2) sp_v sp_i
  | 107 (* subk_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (Array.unsafe_get stk_i (sp_i - 1) - Array.unsafe_get code (pc + 1));
    loop r (pc + 2) sp_v sp_i
  | 108 (* mulk_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (Array.unsafe_get stk_i (sp_i - 1) * Array.unsafe_get code (pc + 1));
    loop r (pc + 2) sp_v sp_i
  | 109 (* divk_i *) ->
    let b = Array.unsafe_get code (pc + 1) in
    if b = 0 then raise (Panic (Value.VStr "integer divide by zero"));
    Array.unsafe_set stk_i (sp_i - 1) (Array.unsafe_get stk_i (sp_i - 1) / b);
    loop r (pc + 2) sp_v sp_i
  | 110 (* modk_i *) ->
    let b = Array.unsafe_get code (pc + 1) in
    if b = 0 then raise (Panic (Value.VStr "integer divide by zero"));
    Array.unsafe_set stk_i (sp_i - 1)
      (Array.unsafe_get stk_i (sp_i - 1) mod b);
    loop r (pc + 2) sp_v sp_i
  | 111 (* ltk_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (if Array.unsafe_get stk_i (sp_i - 1) < Array.unsafe_get code (pc + 1)
       then 1
       else 0);
    loop r (pc + 2) sp_v sp_i
  | 112 (* lek_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (if Array.unsafe_get stk_i (sp_i - 1) <= Array.unsafe_get code (pc + 1)
       then 1
       else 0);
    loop r (pc + 2) sp_v sp_i
  | 113 (* gtk_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (if Array.unsafe_get stk_i (sp_i - 1) > Array.unsafe_get code (pc + 1)
       then 1
       else 0);
    loop r (pc + 2) sp_v sp_i
  | 114 (* gek_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (if Array.unsafe_get stk_i (sp_i - 1) >= Array.unsafe_get code (pc + 1)
       then 1
       else 0);
    loop r (pc + 2) sp_v sp_i
  | 115 (* eqk_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (if Array.unsafe_get stk_i (sp_i - 1) = Array.unsafe_get code (pc + 1)
       then 1
       else 0);
    loop r (pc + 2) sp_v sp_i
  | 116 (* nek_i *) ->
    Array.unsafe_set stk_i (sp_i - 1)
      (if Array.unsafe_get stk_i (sp_i - 1) <> Array.unsafe_get code (pc + 1)
       then 1
       else 0);
    loop r (pc + 2) sp_v sp_i
  | 117 (* sfield_v = vload; field_v *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) -> begin
      match c.Value.v with
      | Value.VPtr p -> begin
        match p.Value.p_cell.Value.v with
        | Value.VStruct cells ->
          let st = r.x_st in
          let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 3)) in
          if c.B.c_a = 2 then st.ic_hits <- st.ic_hits + 1
          else begin
            st.ic_misses <- st.ic_misses + 1;
            c.B.c_a <- 2
          end;
          (match cells.(Array.unsafe_get code (pc + 2)).Value.v with
          | Value.VPoison -> raise (Value.Corruption "read of freed memory")
          | v -> Array.unsafe_set stk_v sp_v v);
          loop r (pc + 6) (sp_v + 1) sp_i
        | Value.VPoison -> raise (Value.Corruption "read of freed memory")
        | _ ->
          raise
            (Runtime_error
               ("field access ."
               ^ r.x_f.B.bf_names.(Array.unsafe_get code (pc + 5))
               ^ " on non-struct"))
      end
      | Value.VStruct cells ->
        let st = r.x_st in
        let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 3)) in
        if c.B.c_a = 1 then st.ic_hits <- st.ic_hits + 1
        else begin
          st.ic_misses <- st.ic_misses + 1;
          c.B.c_a <- 1
        end;
        (match cells.(Array.unsafe_get code (pc + 2)).Value.v with
        | Value.VPoison -> raise (Value.Corruption "read of freed memory")
        | v -> Array.unsafe_set stk_v sp_v v);
        loop r (pc + 6) (sp_v + 1) sp_i
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | va ->
        Array.unsafe_set stk_v sp_v
          (field_value r va
             (Array.unsafe_get code (pc + 2))
             (Array.unsafe_get code (pc + 3))
             (Array.unsafe_get code (pc + 5)));
        loop r (pc + 6) (sp_v + 1) sp_i
    end
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 4))
  end
  | 118 (* sfield_i = vload; field_i *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) -> begin
      match c.Value.v with
      | Value.VPtr p -> begin
        match p.Value.p_cell.Value.v with
        | Value.VStruct cells ->
          let st = r.x_st in
          let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 3)) in
          if c.B.c_a = 2 then st.ic_hits <- st.ic_hits + 1
          else begin
            st.ic_misses <- st.ic_misses + 1;
            c.B.c_a <- 2
          end;
          (match cells.(Array.unsafe_get code (pc + 2)).Value.v with
          | Value.VInt n -> Array.unsafe_set stk_i sp_i n
          | Value.VPoison -> raise (Value.Corruption "read of freed memory")
          | v -> Array.unsafe_set stk_i sp_i (as_int v));
          loop r (pc + 6) sp_v (sp_i + 1)
        | Value.VPoison -> raise (Value.Corruption "read of freed memory")
        | _ ->
          raise
            (Runtime_error
               ("field access ."
               ^ r.x_f.B.bf_names.(Array.unsafe_get code (pc + 5))
               ^ " on non-struct"))
      end
      | Value.VStruct cells ->
        let st = r.x_st in
        let c = r.x_f.B.bf_caches.(Array.unsafe_get code (pc + 3)) in
        if c.B.c_a = 1 then st.ic_hits <- st.ic_hits + 1
        else begin
          st.ic_misses <- st.ic_misses + 1;
          c.B.c_a <- 1
        end;
        (match cells.(Array.unsafe_get code (pc + 2)).Value.v with
        | Value.VInt n -> Array.unsafe_set stk_i sp_i n
        | Value.VPoison -> raise (Value.Corruption "read of freed memory")
        | v -> Array.unsafe_set stk_i sp_i (as_int v));
        loop r (pc + 6) sp_v (sp_i + 1)
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | va ->
        Array.unsafe_set stk_i sp_i
          (as_int
             (field_value r va
                (Array.unsafe_get code (pc + 2))
                (Array.unsafe_get code (pc + 3))
                (Array.unsafe_get code (pc + 5))));
        loop r (pc + 6) sp_v (sp_i + 1)
    end
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 4))
  end
  | 119 (* fstore_i = addr_field_ptr; store_thru, value from I *) ->
    let fidx = Array.unsafe_get code (pc + 1) in
    (match Array.unsafe_get stk_v (sp_v - 1) with
    | Value.VPtr p -> begin
      match p.Value.p_cell.Value.v with
      | Value.VStruct cells ->
        cells.(fidx).Value.v <-
          Value.vint (Array.unsafe_get stk_i (sp_i - 1))
      | Value.VPoison -> raise (Value.Corruption "read of freed memory")
      | _ -> raise (Runtime_error "field of non-struct")
    end
    | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
    | _ -> raise (Runtime_error "field of non-pointer"));
    loop r (pc + 2) (sp_v - 1) (sp_i - 1)
  | 120 (* jlt_not *) ->
    if Array.unsafe_get stk_i (sp_i - 2) < Array.unsafe_get stk_i (sp_i - 1)
    then loop r (pc + 2) sp_v (sp_i - 2)
    else loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 2)
  | 121 (* jle_not *) ->
    if Array.unsafe_get stk_i (sp_i - 2) <= Array.unsafe_get stk_i (sp_i - 1)
    then loop r (pc + 2) sp_v (sp_i - 2)
    else loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 2)
  | 122 (* jgt_not *) ->
    if Array.unsafe_get stk_i (sp_i - 2) > Array.unsafe_get stk_i (sp_i - 1)
    then loop r (pc + 2) sp_v (sp_i - 2)
    else loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 2)
  | 123 (* jge_not *) ->
    if Array.unsafe_get stk_i (sp_i - 2) >= Array.unsafe_get stk_i (sp_i - 1)
    then loop r (pc + 2) sp_v (sp_i - 2)
    else loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 2)
  | 124 (* jeq_not *) ->
    if Array.unsafe_get stk_i (sp_i - 2) = Array.unsafe_get stk_i (sp_i - 1)
    then loop r (pc + 2) sp_v (sp_i - 2)
    else loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 2)
  | 125 (* jne_not *) ->
    if Array.unsafe_get stk_i (sp_i - 2) <> Array.unsafe_get stk_i (sp_i - 1)
    then loop r (pc + 2) sp_v (sp_i - 2)
    else loop r (Array.unsafe_get code (pc + 1)) sp_v (sp_i - 2)
  | 126 (* jltk_not *) ->
    if Array.unsafe_get stk_i (sp_i - 1) < Array.unsafe_get code (pc + 1)
    then loop r (pc + 3) sp_v (sp_i - 1)
    else loop r (Array.unsafe_get code (pc + 2)) sp_v (sp_i - 1)
  | 127 (* jlek_not *) ->
    if Array.unsafe_get stk_i (sp_i - 1) <= Array.unsafe_get code (pc + 1)
    then loop r (pc + 3) sp_v (sp_i - 1)
    else loop r (Array.unsafe_get code (pc + 2)) sp_v (sp_i - 1)
  | 128 (* jgtk_not *) ->
    if Array.unsafe_get stk_i (sp_i - 1) > Array.unsafe_get code (pc + 1)
    then loop r (pc + 3) sp_v (sp_i - 1)
    else loop r (Array.unsafe_get code (pc + 2)) sp_v (sp_i - 1)
  | 129 (* jgek_not *) ->
    if Array.unsafe_get stk_i (sp_i - 1) >= Array.unsafe_get code (pc + 1)
    then loop r (pc + 3) sp_v (sp_i - 1)
    else loop r (Array.unsafe_get code (pc + 2)) sp_v (sp_i - 1)
  | 130 (* jeqk_not *) ->
    if Array.unsafe_get stk_i (sp_i - 1) = Array.unsafe_get code (pc + 1)
    then loop r (pc + 3) sp_v (sp_i - 1)
    else loop r (Array.unsafe_get code (pc + 2)) sp_v (sp_i - 1)
  | 131 (* jnek_not *) ->
    if Array.unsafe_get stk_i (sp_i - 1) <> Array.unsafe_get code (pc + 1)
    then loop r (pc + 3) sp_v (sp_i - 1)
    else loop r (Array.unsafe_get code (pc + 2)) sp_v (sp_i - 1)
  | 132 (* iinc = iload; addk_i; store_slot_i, same slot *) -> begin
    match Array.unsafe_get r.x_slots (Array.unsafe_get code (pc + 1)) with
    | Bdirect c | Bboxed (_, c) ->
      (match c.Value.v with
      | Value.VInt n ->
        c.Value.v <- Value.vint (n + Array.unsafe_get code (pc + 2))
      | _ ->
        c.Value.v <-
          Value.VInt
            (as_int (Value.read_cell c) + Array.unsafe_get code (pc + 2)));
      loop r (pc + 4) sp_v sp_i
    | Bunbound -> unbound_local r (Array.unsafe_get code (pc + 3))
  end
  | op -> raise (Runtime_error ("vm: bad opcode " ^ string_of_int op))

let exec (f : B.fn) (st : state) (fr : frame) : unit =
  let g = st.current in
  (* Acquire LIFO windows from the goroutine's pooled operand stacks.
     On growth the array is replaced without copying: outer calls keep
     their windows in the old array (kept alive by their own [regs]),
     and LIFO order guarantees none of them runs again until every call
     using the replacement has released it. *)
  let need_v = f.B.bf_max_v in
  let base_v =
    if g.g_top_v + need_v <= Array.length g.g_stk_v then g.g_top_v
    else begin
      let len = max (2 * Array.length g.g_stk_v) (max (2 * need_v) 64) in
      g.g_stk_v <- Array.make len Value.VUnit;
      0
    end
  in
  g.g_top_v <- base_v + need_v;
  let need_i = f.B.bf_max_i in
  let base_i =
    if g.g_top_i + need_i <= Array.length g.g_stk_i then g.g_top_i
    else begin
      let len = max (2 * Array.length g.g_stk_i) (max (2 * need_i) 64) in
      g.g_stk_i <- Array.make len 0;
      0
    end
  in
  g.g_top_i <- base_i + need_i;
  let r =
    {
      x_f = f;
      x_st = st;
      x_fr = fr;
      x_code = f.B.bf_code;
      x_stk_v = g.g_stk_v;
      x_stk_i = g.g_stk_i;
      x_slots = fr.slots;
      x_scopes = 0;
      x_iters = [];
    }
  in
  (try loop r 0 base_v base_i
   with e ->
     (* release open scopes innermost-first, exactly like the closure
        engine's nested per-block handlers, before the exception reaches
        call_fn (whose defers must see the blocks already dead) *)
     while r.x_scopes > 0 do
       pop_scope st fr;
       r.x_scopes <- r.x_scopes - 1
     done;
     g.g_top_v <- base_v;
     g.g_top_i <- base_i;
     raise e);
  g.g_top_v <- base_v;
  g.g_top_i <- base_i

(** A dispatch function executing bytecode bodies, suitable for
    [state.dispatch].  Body closures are built once per function here
    rather than per call. *)
let dispatch (prog : B.program) :
    state -> int -> Value.value list -> Value.value list =
  let bodies = Array.map (fun f -> exec f) prog in
  fun st fid args ->
    let f = prog.(fid) in
    call_fn st f.B.bf_fn ~nslots:f.B.bf_nslots ~bind:f.B.bf_bind
      ~body:(Array.unsafe_get bodies fid) ~zeros:f.B.bf_zeros_ret args

(** Point [state.dispatch] at the bytecode. *)
let install (st : state) (prog : B.program) = st.dispatch <- dispatch prog
