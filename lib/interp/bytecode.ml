(** The flat bytecode ISA of the third execution engine.

    A lowered function is one [int array]: each instruction is an opcode
    followed by its inline operands (slot indices, interned function
    ids, absolute jump targets — resolved at emission time by {!Emit},
    with jump-to-jump chains threaded).  Values that cannot be encoded
    as ints live in per-function side tables: a constant pool, the
    allocation sites, zero-value makers, declaration/assignment closures
    reused from {!Compile} for the long tail, and the inline-cache
    records for map-key and struct-field access sites.

    The dispatch loop itself lives in {!Vm}; the opcode numbering here
    and the literal patterns of its [match] must stay in sync (the
    differential suite and the disassembler golden tests hold the
    line). *)

open Minigo

(* Opcode values.  Grouped: control flow, stack shuffling, the unboxed
   int/bool fast path (operands on a native-int stack, so hot
   arithmetic/compare/branch never allocates), generic value ops,
   memory/call/allocation ops.  The numbering is frozen by the Vm match
   and the disasm goldens — append only. *)
let op_halt = 0
let op_safepoint = 1
let op_jmp = 2  (* target *)
let op_jmpifnot = 3  (* target; pops I *)
let op_jmpif = 4  (* target; pops I *)
let op_push_scope = 5
let op_pop_scope = 6
let op_ret = 7  (* n: pop n values, raise Return_values *)
let op_iconst = 8  (* n: push I *)
let op_const = 9  (* const idx: push V *)
let op_iload = 10  (* slot, name idx: int local -> I *)
let op_bload = 11  (* slot, name idx: bool local -> I *)
let op_vload = 12  (* slot, name idx: local -> V *)
let op_giload = 13  (* global slot, name idx *)
let op_gbload = 14
let op_gvload = 15
let op_box_i = 16  (* I -> V *)
let op_box_b = 17
let op_unbox_i = 18  (* V -> I (expects an int) *)
let op_unbox_b = 19  (* V -> I (truthy) *)
let op_copy = 20  (* top of V := Value.copy top *)
let op_pop_v = 21
let op_pop_i = 22
let op_add_i = 23
let op_sub_i = 24
let op_mul_i = 25
let op_div_i = 26
let op_mod_i = 27
let op_and_i = 28
let op_or_i = 29
let op_xor_i = 30
let op_shl_i = 31
let op_shr_i = 32
let op_neg_i = 33
let op_lt_i = 34
let op_le_i = 35
let op_gt_i = 36
let op_ge_i = 37
let op_eq_i = 38
let op_ne_i = 39
let op_not_b = 40
let op_binop = 41  (* binop idx: generic eval_binop on two V *)
let op_neg_v = 42
let op_decl = 43  (* decl idx: pop V, run the declaration closure *)
let op_decl_zero = 44  (* decl idx, zero idx *)
let op_store_slot = 45  (* slot, name idx: pop V, copy, write *)
let op_store_gslot = 46
let op_store_slot_i = 47  (* slot, name idx: pop I, write VInt *)
let op_store_gslot_i = 48
let op_store_slot_b = 49
let op_store_gslot_b = 50
let op_store_deref = 51  (* pop ptr V, pop value V *)
let op_store_index = 52  (* pop idx I, pop base V, pop value V *)
let op_store_map = 53  (* pop key V, pop map V, pop value V *)
let op_store_thru = 54  (* pop ptr V, pop value V (field target) *)
let op_index_v = 55  (* pop idx I, pop base V, push V *)
let op_index_i = 56  (* same, push I (also string byte) *)
let op_index_b = 57
let op_field_v = 58  (* field idx, cache idx, name idx: pop base V *)
let op_field_i = 59
let op_field_b = 60
let op_mapget_v = 61  (* zero idx, cache idx: pop key V, map V *)
let op_mapget_i = 62
let op_mapget_b = 63
let op_mapget_ok = 64  (* zero idx: pop key V, map V, push VTuple *)
let op_len = 65  (* pop V, push I *)
let op_cap = 66
let op_itoa = 67  (* pop I, push V *)
let op_rand = 68  (* pop I, push I *)
let op_substr = 69  (* pop hi I, lo I, string V; push V *)
let op_slice_sub = 70  (* flags (bit0 lo, bit1 hi): pop bounds I, base V *)
let op_slice_copy = 71  (* pop src V, dst V; push I *)
let op_deref = 72  (* pop V, push V *)
let op_call = 73  (* fn id, nargs: pop args V, push pinned result V *)
let op_call_undef = 74  (* name idx, nargs *)
let op_go = 75  (* fn id, nargs (args already copied) *)
let op_go_undef = 76
let op_defer = 77
let op_defer_undef = 78
let op_check_len = 79  (* peek I: negative-length panic before cap eval *)
let op_make_slice = 80  (* site idx, zero idx, has_cap: pop [cap I,] len I *)
let op_make_map = 81  (* site idx *)
let op_new = 82  (* site idx, zero idx *)
let op_slice_lit = 83  (* site idx, n: pop n copied V *)
let op_struct_lit = 84  (* n: pop n copied V *)
let op_addr_struct_lit = 85  (* site idx, n *)
let op_append = 86  (* site idx, n: pop n copied elems V, base V *)
let op_addr_slot = 87  (* slot, name idx: push VPtr *)
let op_addr_gslot = 88
let op_addr_index = 89  (* pop idx I, base V; push VPtr *)
let op_addr_field_ptr = 90  (* field idx: pop ptr-base V; push VPtr *)
let op_addr_field_slot = 91  (* slot, field idx, name idx *)
let op_addr_field_gslot = 92
let op_tuple_check = 93  (* n, kind (0 decl / 1 assign): peek V *)
let op_tuple_get = 94  (* i: peek tuple V, push element V *)
let op_print = 95  (* n: pop n strings V *)
let op_tostr = 96  (* pop V, push VStr *)
let op_tcfree = 97  (* slot, free kind (0 slice / 1 map / 2 obj) *)
let op_delete = 98  (* pop key V, map V *)
let op_panic = 99  (* pop V *)
let op_recover = 100  (* push V *)
let op_range_start = 101  (* exit target: pop map V, push key iterator *)
let op_range_next = 102  (* decl idx, end target *)
let op_range_pop = 103  (* drop the top key iterator (break) *)
let op_thunk_v = 104  (* thunk idx: push V *)
let op_assign_thunk = 105  (* assign idx: pop value V *)

(* Superinstructions: fusions of the sequences above that dominate hot
   loops.  Each replicates its unfused expansion exactly (same
   evaluation order, same panics in the same order), so observable
   behaviour cannot differ; they only cut dispatches and the
   allocations the expansion's boxing steps would make. *)
let op_addk_i = 106  (* k: top of I += k *)
let op_subk_i = 107
let op_mulk_i = 108
let op_divk_i = 109  (* k: keeps the divide-by-zero panic when k = 0 *)
let op_modk_i = 110
let op_ltk_i = 111  (* k: top of I := top < k *)
let op_lek_i = 112
let op_gtk_i = 113
let op_gek_i = 114
let op_eqk_i = 115
let op_nek_i = 116
let op_sfield_v = 117  (* slot, field, cache, var name, field name *)
let op_sfield_i = 118  (* = [vload slot; field_i f] fused *)
let op_fstore_i = 119  (* field idx: pop ptr-base V, value I; store *)
let op_jlt_not = 120  (* target: pop 2 I, jump unless a < b *)
let op_jle_not = 121
let op_jgt_not = 122
let op_jge_not = 123
let op_jeq_not = 124
let op_jne_not = 125
let op_jltk_not = 126  (* k, target: pop 1 I, jump unless a < k *)
let op_jlek_not = 127
let op_jgtk_not = 128
let op_jgek_not = 129
let op_jeqk_not = 130
let op_jnek_not = 131
let op_iinc = 132  (* slot, k, name idx: int local += k in place *)

let n_opcodes = 133

(** A map-key site's cache contents, immutable so a reader sees one
    coherent snapshot through a single pointer load — goroutines on
    different domains may race on the cache, and a torn
    address/key/value combination would return a wrong value.  A hit
    requires the same header address (addresses are never reused), an
    unchanged [md_version] (bumped by every store/delete/grow/free) and
    an equal key, and returns the cached value — the same physical
    value the full lookup would find, so aliasing is unchanged and no
    allocator event is skipped (map reads never allocate). *)
type centry = {
  ce_a : int;  (* map header address; -1 empty *)
  ce_md : Value.map_data;  (* header payload; version read directly *)
  ce_ver : int;
  ce_key : Value.value;
  ce_val : Value.value;
  ce_b : (Value.value * Value.value) list array;
      (* the map's bucket array as of [ce_ver]; lets a same-map
         different-key miss probe the buckets directly, skipping both
         header/buckets object lookups *)
}

(** A monomorphic inline-cache record.  Map-key sites replace the whole
    [c_e] snapshot on update; struct-field sites use [c_a] as the
    cached base shape (1 = struct value, 2 = pointer) — a single
    immediate field, so races can at worst cause a spurious miss. *)
type cache = {
  mutable c_a : int;  (* field-site shape; -1 empty *)
  mutable c_e : centry;  (* map-key site snapshot *)
}

let empty_md : Value.map_data =
  {
    Value.md_buckets = -1;
    md_nbuckets = 1;
    md_count = 0;
    md_entry_size = 2;
    md_version = -1;
  }

let empty_centry =
  { ce_a = -1; ce_md = empty_md; ce_ver = -1; ce_key = Value.VUnit;
    ce_val = Value.VUnit; ce_b = [||] }

let fresh_cache () = { c_a = -1; c_e = empty_centry }

(** One lowered function: the flat code plus its side tables.  The
    header fields pre-size the frame slot array and both operand stacks
    for the whole call. *)
type fn = {
  bf_fn : Tast.func;
  bf_name : string;
  bf_nslots : int;
  bf_max_v : int;  (* value operand stack depth *)
  bf_max_i : int;  (* unboxed int/bool operand stack depth *)
  bf_code : int array;
  bf_consts : Value.value array;  (* strings, floats, nil *)
  bf_sites : Tast.alloc_site array;
  bf_zeros : (unit -> Value.value) array;
  bf_binops : Ast.binop array;
  bf_names : string array;  (* variable/callee names for errors/disasm *)
  bf_decls : (Interp.state -> Interp.frame -> Value.value -> unit) array;
  bf_assigns : (Interp.state -> Interp.frame -> Value.value -> unit) array;
  bf_thunks : (Interp.state -> Interp.frame -> Value.value) array;
  bf_caches : cache array;
  bf_bind : Interp.state -> Interp.frame -> Value.value list -> unit;
  bf_zeros_ret : Interp.state -> Value.value list;
}

type program = fn array

(* ------------------------------------------------------------------ *)
(* Disassembler                                                        *)
(* ------------------------------------------------------------------ *)

let op_name = function
  | 0 -> "halt"
  | 1 -> "safepoint"
  | 2 -> "jmp"
  | 3 -> "jmpifnot"
  | 4 -> "jmpif"
  | 5 -> "push_scope"
  | 6 -> "pop_scope"
  | 7 -> "ret"
  | 8 -> "iconst"
  | 9 -> "const"
  | 10 -> "iload"
  | 11 -> "bload"
  | 12 -> "vload"
  | 13 -> "giload"
  | 14 -> "gbload"
  | 15 -> "gvload"
  | 16 -> "box_i"
  | 17 -> "box_b"
  | 18 -> "unbox_i"
  | 19 -> "unbox_b"
  | 20 -> "copy"
  | 21 -> "pop_v"
  | 22 -> "pop_i"
  | 23 -> "add_i"
  | 24 -> "sub_i"
  | 25 -> "mul_i"
  | 26 -> "div_i"
  | 27 -> "mod_i"
  | 28 -> "and_i"
  | 29 -> "or_i"
  | 30 -> "xor_i"
  | 31 -> "shl_i"
  | 32 -> "shr_i"
  | 33 -> "neg_i"
  | 34 -> "lt_i"
  | 35 -> "le_i"
  | 36 -> "gt_i"
  | 37 -> "ge_i"
  | 38 -> "eq_i"
  | 39 -> "ne_i"
  | 40 -> "not_b"
  | 41 -> "binop"
  | 42 -> "neg_v"
  | 43 -> "decl"
  | 44 -> "decl_zero"
  | 45 -> "store_slot"
  | 46 -> "store_gslot"
  | 47 -> "store_slot_i"
  | 48 -> "store_gslot_i"
  | 49 -> "store_slot_b"
  | 50 -> "store_gslot_b"
  | 51 -> "store_deref"
  | 52 -> "store_index"
  | 53 -> "store_map"
  | 54 -> "store_thru"
  | 55 -> "index_v"
  | 56 -> "index_i"
  | 57 -> "index_b"
  | 58 -> "field_v"
  | 59 -> "field_i"
  | 60 -> "field_b"
  | 61 -> "mapget_v"
  | 62 -> "mapget_i"
  | 63 -> "mapget_b"
  | 64 -> "mapget_ok"
  | 65 -> "len"
  | 66 -> "cap"
  | 67 -> "itoa"
  | 68 -> "rand"
  | 69 -> "substr"
  | 70 -> "slice_sub"
  | 71 -> "slice_copy"
  | 72 -> "deref"
  | 73 -> "call"
  | 74 -> "call_undef"
  | 75 -> "go"
  | 76 -> "go_undef"
  | 77 -> "defer"
  | 78 -> "defer_undef"
  | 79 -> "check_len"
  | 80 -> "make_slice"
  | 81 -> "make_map"
  | 82 -> "new"
  | 83 -> "slice_lit"
  | 84 -> "struct_lit"
  | 85 -> "addr_struct_lit"
  | 86 -> "append"
  | 87 -> "addr_slot"
  | 88 -> "addr_gslot"
  | 89 -> "addr_index"
  | 90 -> "addr_field_ptr"
  | 91 -> "addr_field_slot"
  | 92 -> "addr_field_gslot"
  | 93 -> "tuple_check"
  | 94 -> "tuple_get"
  | 95 -> "print"
  | 96 -> "tostr"
  | 97 -> "tcfree"
  | 98 -> "delete"
  | 99 -> "panic"
  | 100 -> "recover"
  | 101 -> "range_start"
  | 102 -> "range_next"
  | 103 -> "range_pop"
  | 104 -> "thunk_v"
  | 105 -> "assign_thunk"
  | 106 -> "addk_i"
  | 107 -> "subk_i"
  | 108 -> "mulk_i"
  | 109 -> "divk_i"
  | 110 -> "modk_i"
  | 111 -> "ltk_i"
  | 112 -> "lek_i"
  | 113 -> "gtk_i"
  | 114 -> "gek_i"
  | 115 -> "eqk_i"
  | 116 -> "nek_i"
  | 117 -> "sfield_v"
  | 118 -> "sfield_i"
  | 119 -> "fstore_i"
  | 120 -> "jlt_not"
  | 121 -> "jle_not"
  | 122 -> "jgt_not"
  | 123 -> "jge_not"
  | 124 -> "jeq_not"
  | 125 -> "jne_not"
  | 126 -> "jltk_not"
  | 127 -> "jlek_not"
  | 128 -> "jgtk_not"
  | 129 -> "jgek_not"
  | 130 -> "jeqk_not"
  | 131 -> "jnek_not"
  | 132 -> "iinc"
  | op -> Printf.sprintf "op%d" op

(** Operand count per opcode (instruction width − 1). *)
let arity op =
  match op with
  | 2 | 3 | 4 | 7 | 8 | 9 | 41 | 43 | 64 | 70 | 81 | 84 | 90 | 94 | 95
  | 101 | 104 | 105 | 106 | 107 | 108 | 109 | 110 | 111 | 112 | 113 | 114
  | 115 | 116 | 119 | 120 | 121 | 122 | 123 | 124 | 125 ->
    1
  | 10 | 11 | 12 | 13 | 14 | 15 | 44 | 45 | 46 | 47 | 48 | 49 | 50 | 61
  | 62 | 63 | 73 | 74 | 75 | 76 | 77 | 78 | 82 | 83 | 85 | 86 | 87 | 88
  | 93 | 97 | 102 | 126 | 127 | 128 | 129 | 130 | 131 ->
    2
  | 58 | 59 | 60 | 80 | 91 | 92 | 132 -> 3
  | 117 | 118 -> 5
  | _ -> 0

(* Which operand slots hold jump targets, per opcode. *)
let jump_operand op =
  match op with
  | 2 | 3 | 4 | 101 | 120 | 121 | 122 | 123 | 124 | 125 -> Some 0
  | 102 | 126 | 127 | 128 | 129 | 130 | 131 -> Some 1
  | _ -> None

let binop_name : Ast.binop -> string = function
  | Ast.Badd -> "+"
  | Ast.Bsub -> "-"
  | Ast.Bmul -> "*"
  | Ast.Bdiv -> "/"
  | Ast.Bmod -> "%"
  | Ast.Band_bits -> "&"
  | Ast.Bor_bits -> "|"
  | Ast.Bxor -> "^"
  | Ast.Bshl -> "<<"
  | Ast.Bshr -> ">>"
  | Ast.Beq -> "=="
  | Ast.Bne -> "!="
  | Ast.Blt -> "<"
  | Ast.Ble -> "<="
  | Ast.Bgt -> ">"
  | Ast.Bge -> ">="
  | Ast.Band -> "&&"
  | Ast.Bor -> "||"

let disasm_fn (b : Buffer.t) (f : fn) =
  Printf.bprintf b "func %s: slots=%d stack=%d/%d code=%d caches=%d\n"
    f.bf_name f.bf_nslots f.bf_max_v f.bf_max_i (Array.length f.bf_code)
    (Array.length f.bf_caches);
  let code = f.bf_code in
  let name i =
    if i >= 0 && i < Array.length f.bf_names then f.bf_names.(i) else "?"
  in
  let pc = ref 0 in
  while !pc < Array.length code do
    let op = code.(!pc) in
    let o k = code.(!pc + 1 + k) in
    Printf.bprintf b "  %4d  %-16s" !pc (op_name op);
    (match op with
    | 2 (* jmp *) -> Printf.bprintf b "-> %d" (o 0)
    | 3 | 4 -> Printf.bprintf b "-> %d" (o 0)
    | 7 | 8 | 84 | 94 | 95 -> Printf.bprintf b "%d" (o 0)
    | 9 -> Printf.bprintf b "%d  ; %s" (o 0) (Value.to_string f.bf_consts.(o 0))
    | 10 | 11 | 12 | 13 | 14 | 15 | 45 | 46 | 47 | 48 | 49 | 50 | 87 | 88
      ->
      Printf.bprintf b "%d  ; %s" (o 0) (name (o 1))
    | 41 ->
      Printf.bprintf b "%d  ; %s" (o 0) (binop_name f.bf_binops.(o 0))
    | 43 -> Printf.bprintf b "decl#%d" (o 0)
    | 44 -> Printf.bprintf b "decl#%d zero#%d" (o 0) (o 1)
    | 58 | 59 | 60 ->
      Printf.bprintf b ".%d ic#%d  ; %s" (o 0) (o 1) (name (o 2))
    | 61 | 62 | 63 -> Printf.bprintf b "zero#%d ic#%d" (o 0) (o 1)
    | 64 -> Printf.bprintf b "zero#%d" (o 0)
    | 70 -> Printf.bprintf b "flags=%d" (o 0)
    | 73 | 75 | 77 -> Printf.bprintf b "fn#%d nargs=%d" (o 0) (o 1)
    | 74 | 76 | 78 -> Printf.bprintf b "%s nargs=%d" (name (o 0)) (o 1)
    | 80 ->
      Printf.bprintf b "site#%d zero#%d cap=%b"
        f.bf_sites.(o 0).Tast.site_id (o 1) (o 2 = 1)
    | 81 -> Printf.bprintf b "site#%d" f.bf_sites.(o 0).Tast.site_id
    | 82 | 83 | 85 | 86 ->
      Printf.bprintf b "site#%d %d" f.bf_sites.(o 0).Tast.site_id (o 1)
    | 90 -> Printf.bprintf b ".%d" (o 0)
    | 91 | 92 ->
      Printf.bprintf b "%d .%d  ; %s" (o 0) (o 1) (name (o 2))
    | 93 ->
      Printf.bprintf b "%d %s" (o 0)
        (if o 1 = 0 then "decl" else "assign")
    | 97 ->
      Printf.bprintf b "%d %s" (o 0)
        (match o 1 with 0 -> "slice" | 1 -> "map" | _ -> "obj")
    | 101 -> Printf.bprintf b "exit -> %d" (o 0)
    | 102 -> Printf.bprintf b "decl#%d end -> %d" (o 0) (o 1)
    | 104 -> Printf.bprintf b "thunk#%d" (o 0)
    | 105 -> Printf.bprintf b "assign#%d" (o 0)
    | 106 | 107 | 108 | 109 | 110 | 111 | 112 | 113 | 114 | 115 | 116 ->
      Printf.bprintf b "%d" (o 0)
    | 117 | 118 ->
      Printf.bprintf b "%d .%d ic#%d  ; %s.%s" (o 0) (o 1) (o 2)
        (name (o 3)) (name (o 4))
    | 119 -> Printf.bprintf b ".%d" (o 0)
    | 120 | 121 | 122 | 123 | 124 | 125 -> Printf.bprintf b "-> %d" (o 0)
    | 126 | 127 | 128 | 129 | 130 | 131 ->
      Printf.bprintf b "%d -> %d" (o 0) (o 1)
    | 132 -> Printf.bprintf b "%d %+d  ; %s" (o 0) (o 1) (name (o 2))
    | _ -> ());
    Buffer.add_char b '\n';
    pc := !pc + 1 + arity op
  done

let disasm (p : program) : string =
  let b = Buffer.create 4096 in
  Array.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b '\n';
      disasm_fn b f)
    p;
  Buffer.contents b
