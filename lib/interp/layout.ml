(** Static layout of a program for the slot-resolved interpreter: every
    variable id maps to a dense frame slot (locals) or global slot
    (globals), and every function name is interned to an integer id.

    Computed once per run, before execution; both the reference
    tree-walker and the closure compiler ({!Compile}) resolve variables
    and calls through it, so the two execution modes agree on storage by
    construction. *)

open Minigo

type t = {
  l_funcs : Tast.func array;  (** function bodies, by interned id *)
  l_func_ids : (string, int) Hashtbl.t;
      (** name → id; duplicate names keep the last definition, matching
          the old string-keyed [Hashtbl.replace] dispatch table *)
  l_nslots : int array;  (** frame slots needed, by function id *)
  l_slots : int array;
      (** variable id → frame slot (locals) or global slot (globals);
          [-1] for ids never mentioned by the program *)
  l_nglobals : int;
}

let func_id t name = Hashtbl.find_opt t.l_func_ids name

let slot t (v : Tast.var) = t.l_slots.(v.Tast.v_id)

(* Visit every variable occurring in an lvalue head position. *)
let lvalue_var k = function
  | Tast.Lvar v -> k v
  | Tast.Lderef _ | Tast.Lindex _ | Tast.Lmap _ | Tast.Lfield _ -> ()

(* Visit every variable occurring in [e], including address-of targets
   ([Tast.iter_expr] recurses into lvalue subexpressions but not the
   [Lvar] head itself). *)
let expr_vars k (e : Tast.expr) =
  Tast.iter_expr
    (fun e ->
      match e.Tast.desc with
      | Tast.Tvar v -> k v
      | Tast.Taddr lv -> lvalue_var k lv
      | _ -> ())
    e

(* Visit every variable a statement declares or mentions (shallow in
   nested blocks; combined with [Tast.iter_stmts] below). *)
let stmt_vars k (s : Tast.stmt) =
  (match s with
  | Tast.Sdecl (v, _) -> k v
  | Tast.Smulti_decl (vs, _) -> List.iter k vs
  | Tast.Sforrange_map (v, _, _) -> k v
  | Tast.Stcfree (v, _) -> k v
  | Tast.Sassign (lv, _) -> lvalue_var k lv
  | Tast.Smulti_assign (lvs, _) -> List.iter (lvalue_var k) lvs
  | _ -> ());
  Tast.iter_stmt_exprs (expr_vars k) s

let func_vars k (f : Tast.func) =
  List.iter k f.Tast.f_params;
  Tast.iter_stmts (stmt_vars k) f.Tast.f_body

let of_program (p : Tast.program) : t =
  let slots = Array.make (max 1 p.Tast.p_nvars) (-1) in
  let nglobals = ref 0 in
  List.iter
    (fun ((v : Tast.var), _) ->
      if slots.(v.Tast.v_id) < 0 then begin
        slots.(v.Tast.v_id) <- !nglobals;
        incr nglobals
      end)
    p.Tast.p_globals;
  let funcs = Array.of_list p.Tast.p_funcs in
  let func_ids = Hashtbl.create (2 * Array.length funcs) in
  Array.iteri
    (fun i (f : Tast.func) -> Hashtbl.replace func_ids f.Tast.f_name i)
    funcs;
  let nslots =
    Array.map
      (fun f ->
        let next = ref 0 in
        func_vars
          (fun (v : Tast.var) ->
            match v.Tast.v_kind with
            | Tast.Vglobal -> ()
            | _ ->
              if slots.(v.Tast.v_id) < 0 then begin
                slots.(v.Tast.v_id) <- !next;
                incr next
              end)
          f;
        !next)
      funcs
  in
  { l_funcs = funcs; l_func_ids = func_ids; l_nslots = nslots;
    l_slots = slots; l_nglobals = !nglobals }
