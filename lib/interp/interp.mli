(** Tree-walking interpreter for instrumented MiniGo over the simulated
    GoFree runtime.  Goroutines are cooperative fibers; GC runs only at
    statement-boundary safepoints; tcfree statements call the runtime's
    free family. *)

open Minigo
module Rt = Gofree_runtime

exception Runtime_error of string

exception Panic of Value.value

exception Return_values of Value.value list

exception Break_loop

exception Continue_loop

(** A variable's storage: a frame cell, or a 1-cell heap box when its
    address escapes (the analysis decides). *)
type binding =
  | Bdirect of Value.cell
  | Bboxed of int * Value.cell

type frame = {
  fn : Tast.func;
  bindings : (int, binding) Hashtbl.t;
  mutable defers : (string * Value.value list) list;
  mutable stack_objs : Rt.Heap.obj list list;
  mutable temps : Value.value list;
      (** GC pins for values produced in the current statement *)
  gid : int;
}

type goroutine = { g_id : int; mutable g_frames : frame list }

type run_config = {
  heap_config : Rt.Heap.config;
  seed : int64;  (** PRNG seed for MiniGo's [rand] *)
  max_steps : int;  (** hard budget; exceeded = [Runtime_error] *)
  yield_every : int;  (** steps between goroutine switches *)
  nprocs : int;  (** logical processors (mcaches) *)
  migrate_every : int;  (** yields between simulated P migrations *)
  sample_every : int;
      (** snapshot the heap counters every N steps (0 = off) *)
}

val default_config : run_config

type state = {
  program : Tast.program;
  decisions : Decisions.t;
  heap : Rt.Heap.t;
  sched : Sched.t;
  output : Buffer.t;
  globals : (int, Value.cell) Hashtbl.t;
  funcs : (string, Tast.func) Hashtbl.t;
  config : run_config;
  mutable goroutines : goroutine list;
  mutable current : goroutine;
  mutable steps : int;
  mutable rng : int64;
  mutable next_scope_token : int;
  mutable unwinding : Value.value option;
      (** the active panic value while defers run during unwinding *)
}

(** Enumerate every root address: globals, all goroutines' frame
    bindings, statement pins and pending defer arguments. *)
val iter_roots : state -> (int -> unit) -> unit

val eval : state -> Tast.expr -> Value.value

(** Call a MiniGo function with already-evaluated arguments; runs its
    defers on both normal exit and panic unwind. *)
val call_function : state -> string -> Value.value list -> Value.value list

val exec_block : state -> Tast.block -> unit
