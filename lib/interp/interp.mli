(** Tree-walking interpreter for instrumented MiniGo over the simulated
    GoFree runtime.  Goroutines are cooperative fibers; GC runs only at
    statement-boundary safepoints; tcfree statements call the runtime's
    free family.

    Variables resolve through a per-program {!Layout} into pre-sized
    frame slot arrays; calls go through interned function ids.  The
    state's [dispatch] hook selects the execution mode per call:
    {!call_by_id}, this module's reference tree-walker, or the
    closure-compiled bodies installed by {!Compile}.  Both modes share
    the allocation/map/call helpers exported below, so they are
    observationally identical by construction. *)

open Minigo
module Rt = Gofree_runtime

exception Runtime_error of string

exception Panic of Value.value

exception Return_values of Value.value list

exception Break_loop

exception Continue_loop

(** A variable's storage: a frame cell, or a 1-cell heap box when its
    address escapes (the analysis decides).  [Bunbound] marks a slot
    whose declaration has not executed on this path. *)
type binding =
  | Bunbound
  | Bdirect of Value.cell
  | Bboxed of int * Value.cell

type frame = {
  fn : Tast.func;
  slots : binding array;  (** locals by {!Layout} frame slot *)
  mutable defers : (int * Value.value list) list;
      (** interned function id + evaluated arguments *)
  mutable stack_objs : Rt.Heap.obj list list;
  mutable lazy_scopes : int;
      (** open scopes not yet materialized in [stack_objs] because no
          stack object has registered in them *)
  mutable temps : Value.value list;
      (** GC pins for values produced in the current statement *)
  gid : int;
}

type goroutine = {
  g_id : int;
  mutable g_frames : frame list;
  (* operand-stack pool for the bytecode VM; windows are strictly LIFO
     within a goroutine and never alive across a safepoint *)
  mutable g_stk_v : Value.value array;
  mutable g_top_v : int;
  mutable g_stk_i : int array;
  mutable g_top_i : int;
  mutable g_pending : Value.value list;
      (** spawn arguments of a not-yet-started goroutine; rooted by
          multi-domain runs, always empty under the sequential
          scheduler *)
}

(** Which execution engine interprets function bodies.  All three share
    the allocation/map/call/safepoint helpers exported below through the
    state's [dispatch] hook, so observable behaviour (output, metrics,
    GC) is identical by construction. *)
type engine =
  | Eng_reference  (** tree-walking reference interpreter (this module) *)
  | Eng_closure  (** closure-compiled bodies ({!Compile}) *)
  | Eng_bytecode  (** flat bytecode VM ({!Emit}/{!Vm}) *)

type run_config = {
  heap_config : Rt.Heap.config;
  seed : int64;  (** PRNG seed for MiniGo's [rand] *)
  max_steps : int;  (** hard budget; exceeded = [Runtime_error] *)
  yield_every : int;  (** steps between goroutine switches *)
  nprocs : int;  (** logical processors (mcaches) *)
  migrate_every : int;  (** yields between simulated P migrations *)
  sample_every : int;
      (** snapshot the heap counters every N steps (0 = off) *)
  engine : engine;
      (** which engine executes function bodies; the reference
          tree-walker is slowest but is the semantic ground truth *)
  domains : int;
      (** 0 = sequential effect-handler scheduler (the legacy path);
          N >= 1 = run goroutines on N OCaml domains through the
          work-stealing scheduler.  [domains = 1] is byte-identical to
          sequential by construction. *)
}

val default_config : run_config

type state = {
  program : Tast.program;
  decisions : Decisions.t;
  layout : Layout.t;
  heap : Rt.Heap.t;
  sched : Sched.t;
  output : Buffer.t;
  globals : binding array;  (** by {!Layout} global slot *)
  config : run_config;
  mutable dispatch : state -> int -> Value.value list -> Value.value list;
      (** how calls execute: {!call_by_id} or compiled bodies; defers
          and goroutine entry points route through it *)
  mutable goroutines : goroutine list;
  mutable current : goroutine;
  mutable steps : int;
  mutable rng : int64;
  mutable next_scope_token : int;
  mutable unwinding : Value.value option;
      (** the active panic value while defers run during unwinding *)
  mutable ic_hits : int;
      (** bytecode-engine inline-cache hits (map-key + struct-field
          sites); flushed into the telemetry registry by the runner *)
  mutable ic_misses : int;
  mutable yield_at : int;
      (** next step count at which to yield (advances by
          [config.yield_every]) *)
  mutable dom : int;
      (** index of the domain currently executing this state's goroutine
          (multi-domain runs; 0 otherwise) *)
  mutable par : parctx option;
      (** the shared parallel-runtime context when goroutines run on the
          work-stealing domain scheduler ([--domains >= 1]) *)
}

(** Shared context of one multi-domain run: per-domain run queues, the
    goroutine registry (the parallel GC's root set), scheduler
    bookkeeping and the stop-the-world handshake state.
    [p_mutex]/[p_work] guard every mutable field except the queues
    (internally locked) and [p_rng] (atomic). *)
and parctx = {
  p_nd : int;  (** number of domains *)
  p_queues : ptask Gofree_sched.Wsq.t array;  (** one per domain *)
  p_mutex : Mutex.t;
  p_work : Condition.t;
  mutable p_live : int;  (** goroutines queued or running *)
  mutable p_running : int;  (** domains currently executing a slice *)
  mutable p_regs : (goroutine * state) list;
  mutable p_yields : int;
  mutable p_budget : int;
      (** nd = 1 only: steps left in the shared sequential-replay slice *)
  mutable p_steals : int;  (** goroutines moved by work stealing *)
  mutable p_spawns : int;
  mutable p_steps_done : int;
      (** summed step counts of finished goroutines *)
  mutable p_ic_hits : int;  (** inline-cache hits of finished goroutines *)
  mutable p_ic_misses : int;
  mutable p_abort : exn option;
  mutable p_gc_active : bool;
  mutable p_gc_cycle : Rt.Gc_collector.Par.cycle option;
  p_out_mutex : Mutex.t;
  p_rng : int64 Atomic.t;
  p_dls : int Domain.DLS.key;
}

and ptask = {
  tk_st : state;  (** the goroutine's state copy ([dom] set per slice) *)
  tk_run : unit -> unit;  (** start the fiber or resume its continuation *)
}

(** Enumerate every root address: globals, all goroutines' frame slots,
    statement pins and pending defer arguments. *)
val iter_roots : state -> (int -> unit) -> unit

val make_parctx : nd:int -> seed:int64 -> yield_every:int -> parctx

(** Root enumeration for parallel runs (the [p_regs] registry replaces
    [state.goroutines]; pending spawn arguments are rooted when
    nd > 1). *)
val iter_roots_par :
  parctx -> globals:binding array -> (int -> unit) -> unit

(** Append to the program output; whole-string-atomic when nd > 1. *)
val emit_str : state -> string -> unit

(** Package a goroutine body as a schedulable task whose yields
    re-enqueue on the domain executing it. *)
val fiber_task : parctx -> state -> (unit -> unit) -> ptask

val eval : state -> Tast.expr -> Value.value

(** Call a MiniGo function with already-evaluated arguments through the
    state's dispatch; runs its defers on both normal exit and panic
    unwind. *)
val call_function : state -> string -> Value.value list -> Value.value list

(** The reference (tree-walking) call path, by interned function id; the
    default value of [dispatch]. *)
val call_by_id : state -> int -> Value.value list -> Value.value list

val exec_block : state -> Tast.block -> unit

(** {2 Shared execution machinery}

    Everything below is the single implementation of the runtime
    semantics used by both the reference walker and the closure compiler
    — keeping them shared is what makes the two modes agree on every
    allocator-visible event. *)

val cur_frame : state -> frame

val cur_thread : state -> int

(** Statement boundary: step accounting, pin reset, GC poll, sampler
    poll, cooperative yield. *)
val safepoint : state -> unit

(** The safepoint's slow path (budget check, GC — stop-the-world
    handshake in multi-domain runs —, sampling, yield); exported for the
    bytecode VM, whose fast path replicates {!safepoint}'s guard. *)
val safepoint_slow : state -> unit

val push_scope : state -> frame -> int

val pop_scope : state -> frame -> unit

(** Pin a value on [frame] for the rest of the current statement. *)
val pin : state -> frame -> Value.value -> Value.value

val rand_int : state -> int -> int

val zero_of : state -> Types.t -> unit -> Value.value

val binding_cell : binding -> Value.cell

val lookup_binding : state -> Tast.var -> binding

(** Bind [var] in [frame], heap-boxing it when the analysis says its
    address escapes. *)
val declare_var : state -> frame -> Tast.var -> Value.value -> unit

val truthy : Value.value -> bool

val as_int : Value.value -> int

(** Strict binary operators ([&&]/[||] are handled lazily by callers). *)
val eval_binop : Ast.binop -> Value.value -> Value.value -> Value.value

val value_eq : Value.value -> Value.value -> bool

val alloc_obj :
  state ->
  frame ->
  site:Tast.alloc_site ->
  category:Rt.Metrics.category ->
  size:int ->
  payload:Rt.Heap.payload ->
  Rt.Heap.obj

val alloc_heap_obj :
  state ->
  category:Rt.Metrics.category ->
  size:int ->
  payload:Rt.Heap.payload ->
  Rt.Heap.obj

val make_slice_obj :
  state ->
  frame ->
  site:Tast.alloc_site ->
  elem_size:int ->
  len:int ->
  cap:int ->
  zero_of:(unit -> Value.value) ->
  Value.value

val make_map_obj : state -> frame -> site:Tast.alloc_site -> Value.value

(** The live header and buckets of the map at an address; raises
    {!Value.Corruption} when either has been freed.  Exported for the
    bytecode VM's map-site inline caches, which key on
    [Value.map_data.md_version]. *)
val map_data :
  state -> int -> Value.map_data * (Value.value * Value.value) list array

val map_store : state -> int -> Value.value -> Value.value -> unit

val map_get :
  state -> int -> Value.value -> zero:(unit -> Value.value) -> Value.value

val map_delete : state -> int -> Value.value -> unit

val map_len : state -> int -> int

(** Key snapshot for [for k := range m], in iteration order. *)
val map_range_keys : state -> int -> Value.value list

(** Grow a slice by already-evaluated elements (append semantics:
    in-place within capacity, else heap reallocation). *)
val eval_append :
  state ->
  frame ->
  site:Tast.alloc_site ->
  Value.value ->
  Value.value list ->
  Value.value

(** Apply a tcfree of the given kind to an already-resolved binding
    (callers filter [Bunbound] — never executed — as a no-op). *)
val tcfree_binding : state -> binding -> Tast.free_kind -> unit

(** The shared call protocol: push a pre-sized frame, [bind] the
    arguments, run [body]; defers, scope release and the panic/recover
    handshake happen on every exit path. *)
val call_fn :
  state ->
  Tast.func ->
  nslots:int ->
  bind:(state -> frame -> Value.value list -> unit) ->
  body:(state -> frame -> unit) ->
  zeros:(state -> Value.value list) ->
  Value.value list ->
  Value.value list

(** Interned id for a function name; [Runtime_error] if undefined. *)
val resolve_func : state -> string -> int

(** Start a goroutine running function [fid] (through dispatch). *)
val spawn_goroutine : state -> int -> Value.value list -> unit
