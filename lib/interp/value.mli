(** Runtime values of MiniGo and their payload representation inside the
    simulated heap.

    All mutable storage is a {!cell}; a pointer is an (owner address,
    cell) pair so the GC can keep the owning heap object alive while the
    interpreter mutates through the cell directly. *)

type cell = { mutable v : value }

and value =
  | VUnit
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VNil
  | VPtr of ptr
  | VSlice of slice
  | VMap of int  (** address of the map header object *)
  | VStruct of cell array  (** value semantics: copied on assignment *)
  | VTuple of value list  (** multi-value call result *)
  | VPoison  (** contents of mock-freed memory (§6.8) *)

and ptr = {
  p_owner : int;  (** heap/stack object owning the cell; 0 = frame slot *)
  p_cell : cell;
}

and slice = {
  s_addr : int;  (** backing-array object *)
  s_cells : cell array;  (** shared backing store *)
  s_off : int;  (** view offset into the backing array *)
  s_len : int;  (** view length; capacity = Array.length s_cells − s_off *)
}

type map_data = {
  mutable md_buckets : int;
  mutable md_nbuckets : int;
  mutable md_count : int;
  md_entry_size : int;
  mutable md_version : int;
      (** bumped on every store/delete/grow/free; invalidates the
          bytecode engine's map-site inline caches *)
}

type Gofree_runtime.Heap.payload +=
  | Pcells of cell array  (** slice backing array, or a 1-cell box *)
  | Pmap of map_data
  | Pbuckets of (value * value) list array

exception Corruption of string
(** read of poisoned memory: a wrong explicit free was observed *)

val cell : value -> cell

(** [VInt n], from a shared pool of boxes when [n] is small.  [VInt] is
    immutable and compared structurally everywhere, so sharing is
    invisible; small ints dominate cell stores. *)
val vint : int -> value

(** Read a cell; raises {!Corruption} on poison. *)
val read_cell : cell -> value

(** Assignment copy: deep for struct values, identity otherwise. *)
val copy : value -> value

(** Zero value of a type (Go semantics). *)
val zero : Minigo.Types.env -> Minigo.Types.t -> value

(** Heap addresses referenced by a value (GC tracing). *)
val trace : value -> (int -> unit) -> unit

(** Payload tracer registered with the heap. *)
val trace_payload : Gofree_runtime.Heap.payload -> (int -> unit) -> unit

(** Poison-mode payload corruption: every owned cell becomes [VPoison]. *)
val poison_payload : Gofree_runtime.Heap.payload -> unit

(** Structural equality for map keys. *)
val equal_key : value -> value -> bool

val hash_key : value -> int

(** Deterministic textual form for [println] (addresses hidden so output
    is identical across compiler settings). *)
val to_string : value -> string
