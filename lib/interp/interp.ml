(** Tree-walking interpreter for instrumented MiniGo over the simulated
    GoFree runtime.

    Design notes that matter for fidelity of the measurements:

    - every allocation site goes through the simulated heap, on the stack
      or heap side according to the escape analysis decision, so the
      paper's Table 5 metrics fall out of real allocator/GC work;
    - GC cycles run only at {e safepoints} (statement boundaries and loop
      back-edges); within one statement all freshly allocated values are
      additionally pinned in a per-frame temp list, so a collection
      triggered inside a callee can never reclaim a value the caller is
      still holding in OCaml locals;
    - [Stcfree] statements call the runtime's tcfree family; map growth
      calls GrowMapAndFreeOld internally (§4.6.2);
    - goroutines are cooperative fibers, each allocating from the mcache
      of its current logical processor.

    Variables are resolved through a per-program {!Layout}: every frame
    is a pre-sized slot array and every call goes through an interned
    function id.  The [dispatch] hook on the state selects the execution
    mode per call: this module's recursive tree-walker (the reference
    semantics), or the closure-compiled bodies {!Compile} installs.  Both
    modes share every allocation/map/tcfree helper below, so they are
    observationally identical by construction. *)

open Minigo
module Rt = Gofree_runtime

exception Runtime_error of string

exception Panic of Value.value

(* Function return carrier. *)
exception Return_values of Value.value list

(* Loop control carriers. *)
exception Break_loop

exception Continue_loop

type binding =
  | Bunbound  (** slot's declaration not yet executed on this path *)
  | Bdirect of Value.cell
  | Bboxed of int * Value.cell  (** heap box address + its cell *)

type frame = {
  fn : Tast.func;
  slots : binding array;  (** locals by {!Layout} frame slot *)
  mutable defers : (int * Value.value list) list;
      (** interned function id + evaluated arguments *)
  mutable stack_objs : Rt.Heap.obj list list;
      (** per open scope, innermost first *)
  mutable lazy_scopes : int;
      (** open scopes inside the innermost entry of [stack_objs] that
          have no registered objects yet (see {!push_scope}) *)
  mutable temps : Value.value list;  (** GC pins for the current statement *)
  gid : int;
}

type goroutine = {
  g_id : int;
  mutable g_frames : frame list;
  (* Operand-stack pool for the bytecode VM.  Calls within one
     goroutine are strictly LIFO even across yields, so each [Vm.exec]
     carves a window out of these arrays and restores the top on exit
     (including the unwind path).  The windows are dead at every
     safepoint and are not simulated-GC roots. *)
  mutable g_stk_v : Value.value array;
  mutable g_top_v : int;
  mutable g_stk_i : int array;
  mutable g_top_i : int;
  mutable g_pending : Value.value list;
      (** arguments of a spawned goroutine that has not started yet.
          Multi-domain runs root these (the goroutine may sit queued
          across a GC); cleared when the body starts.  The sequential
          scheduler leaves this empty — its root set is unchanged. *)
}

(** Which execution engine interprets function bodies.  All three share
    the allocation/map/call/safepoint helpers in this module through the
    state's [dispatch] hook, so observable behaviour (output, metrics,
    GC) is identical by construction. *)
type engine =
  | Eng_reference  (** tree-walking reference interpreter (this module) *)
  | Eng_closure  (** closure-compiled bodies ({!Compile}) *)
  | Eng_bytecode  (** flat bytecode VM ({!Emit}/{!Vm}) *)

type run_config = {
  heap_config : Rt.Heap.config;
  seed : int64;
  max_steps : int;  (** hard budget; exceeded = Runtime_error *)
  yield_every : int;
  nprocs : int;
  migrate_every : int;
  sample_every : int;
      (** snapshot the heap counters every N steps (0 = off); the runner
          attaches the {!Gofree_runtime.Sampler} this feeds *)
  engine : engine;
      (** which engine executes function bodies; the reference
          tree-walker is slowest but is the semantic ground truth *)
  domains : int;
      (** 0 = sequential effect-handler scheduler (the legacy path);
          N >= 1 = run goroutines on N OCaml domains through the
          work-stealing scheduler.  [domains = 1] is byte-identical to
          sequential by construction. *)
}

let default_config =
  {
    heap_config = Rt.Heap.default_config;
    seed = 42L;
    max_steps = 500_000_000;
    yield_every = 512;
    nprocs = 4;
    (* Goroutine-to-P migration is rare in Go; the ownership-change
       give-up path is still exercised by multi-goroutine programs whose
       fibers share spans through mcentral. *)
    migrate_every = 2048;
    sample_every = 0;
    engine = Eng_bytecode;
    domains = 0;
  }

(** Execution state.  Sequential runs share one record across every
    goroutine ([current] switches on yield).  Multi-domain runs give
    each goroutine its own copy — [current] is then fixed for the
    goroutine's lifetime and the per-goroutine mutable fields (steps,
    yield pacing, unwinding, IC counters, rng shadow) are private to
    it, while [program]/[heap]/[globals]/[output]/[sched] stay
    physically shared.  The copy's [dom] is updated by the scheduler
    before every slice, so a stolen goroutine allocates through the
    thief domain's mcache — which is what makes the paper's
    give-up-on-ownership-change tcfree path a real race. *)
type state = {
  program : Tast.program;
  decisions : Decisions.t;
  layout : Layout.t;
  heap : Rt.Heap.t;
  sched : Sched.t;
  output : Buffer.t;
  globals : binding array;  (** by {!Layout} global slot *)
  config : run_config;
  mutable dispatch : state -> int -> Value.value list -> Value.value list;
      (** how calls execute: {!call_by_id} (reference) or the compiled
          bodies; defers and goroutine entry points route through it *)
  mutable goroutines : goroutine list;
  mutable current : goroutine;
  mutable steps : int;
  mutable rng : int64;
  mutable next_scope_token : int;
  mutable unwinding : Value.value option;
      (** the active panic value while defers run during unwinding;
          [recover] clears it *)
  mutable ic_hits : int;
      (** bytecode-engine inline-cache hits (map-key + struct-field
          sites); flushed into the telemetry registry by the runner *)
  mutable ic_misses : int;
  mutable yield_at : int;
      (** next step count at which to yield; advances by
          [config.yield_every] — equivalent to [steps mod yield_every]
          without the division on the safepoint fast path *)
  mutable dom : int;
      (** index of the domain currently executing this state's
          goroutine (multi-domain runs; 0 otherwise).  Set by the
          work-stealing scheduler before each slice. *)
  mutable par : parctx option;
      (** the shared parallel-runtime context, when goroutines run on
          the work-stealing domain scheduler ([--domains >= 1]) *)
}

(** Shared context of one multi-domain run: per-domain run queues, the
    goroutine registry (the GC root set), scheduler bookkeeping, and
    the stop-the-world handshake state.  [p_mutex]/[p_work] guard every
    mutable field except the queues (internally locked) and [p_rng]
    (atomic). *)
and parctx = {
  p_nd : int;  (** number of domains *)
  p_queues : ptask Gofree_sched.Wsq.t array;  (** one per domain *)
  p_mutex : Mutex.t;
  p_work : Condition.t;
      (** new work / slice completion / GC-phase transitions *)
  mutable p_live : int;  (** goroutines queued or running *)
  mutable p_running : int;  (** domains currently executing a slice *)
  mutable p_regs : (goroutine * state) list;
      (** every live goroutine with its state copy — the parallel GC's
          root registry (newest first, like the sequential list) *)
  mutable p_yields : int;
      (** total yields; drives the simulated-P drift at [--domains 1]
          so thread ids reproduce the sequential [Sched.pid_for] *)
  mutable p_budget : int;
      (** [--domains 1] only: steps left in the current shared slice.
          The sequential scheduler checks one global step counter
          against one global yield threshold, so a goroutine that
          finishes mid-slice passes its leftover budget to the next
          task; the single-domain worker replays that by loading this
          into each state copy's [yield_at] before every slice. *)
  mutable p_steals : int;  (** goroutines moved by work stealing *)
  mutable p_spawns : int;
  mutable p_steps_done : int;
      (** summed step counts of finished goroutines; plus the live
          states' counters this reproduces the sequential total *)
  mutable p_ic_hits : int;  (** inline-cache hits of finished goroutines *)
  mutable p_ic_misses : int;
  mutable p_abort : exn option;
      (** first exception escaping a goroutine; aborts the run *)
  mutable p_gc_active : bool;
      (** a domain is leading a stop-the-world GC handshake *)
  mutable p_gc_cycle : Rt.Gc_collector.Par.cycle option;
      (** published by the leader once every mutator is stopped, so
          parked domains can help mark and sweep *)
  p_out_mutex : Mutex.t;  (** serializes [output] appends when nd > 1 *)
  p_rng : int64 Atomic.t;
      (** the shared splitmix64 stream: all goroutines draw from one
          sequence, CAS-claimed — at one domain this reproduces the
          sequential stream exactly *)
  p_dls : int Domain.DLS.key;  (** executing domain's index *)
}

and ptask = {
  tk_st : state;  (** the goroutine's state copy ([dom] set per slice) *)
  tk_run : unit -> unit;  (** start the fiber, or resume its continuation *)
}

(* ------------------------------------------------------------------ *)
(* RNG: splitmix64, deterministic per run                              *)
(* ------------------------------------------------------------------ *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Multi-domain runs draw from one shared stream (CAS-claimed) so the
   sequence of dispensed values is a permutation of the sequential one;
   at one domain the claim order equals program order, reproducing the
   sequential stream exactly. *)
let rng_next st =
  match st.par with
  | None ->
    let z = Int64.add st.rng 0x9E3779B97F4A7C15L in
    st.rng <- z;
    mix64 z
  | Some p ->
    let rec claim () =
      let cur = Atomic.get p.p_rng in
      let z = Int64.add cur 0x9E3779B97F4A7C15L in
      if Atomic.compare_and_set p.p_rng cur z then z else claim ()
    in
    mix64 (claim ())

let rand_int st bound =
  if bound <= 0 then 0
  else
    Int64.to_int (Int64.rem (Int64.logand (rng_next st) Int64.max_int)
        (Int64.of_int bound))

(* ------------------------------------------------------------------ *)
(* Frames, scopes and roots                                            *)
(* ------------------------------------------------------------------ *)

let cur_frame st =
  match st.current.g_frames with
  | f :: _ -> f
  | [] -> raise (Runtime_error "no active frame")

(* Which simulated P (mcache index) the current goroutine allocates
   through.  Sequential runs simulate migration via [Sched.pid_for]; a
   single-domain parallel run reproduces that formula bit-for-bit from
   the parctx yield counter (its only writer is the one domain, so the
   unlocked read is exact); true multi-domain runs use the executing
   domain's index — ownership then really changes when a goroutine is
   stolen. *)
let cur_thread st =
  match st.par with
  | None -> Sched.pid_for st.sched ~gid:st.current.g_id
  | Some p ->
    if p.p_nd = 1 then
      let drift =
        if st.config.migrate_every <= 0 then 0
        else p.p_yields / st.config.migrate_every
      in
      (st.current.g_id + drift) mod st.config.nprocs
    else st.dom

(* Scopes are materialized lazily: entering one only bumps a counter,
   and the per-scope object list springs into existence when the first
   stack object registers (most scopes register none).  LIFO order is
   preserved because registration materializes every pending scope as
   an empty list before prepending to the innermost. *)
let push_scope st fr =
  fr.lazy_scopes <- fr.lazy_scopes + 1;
  st.next_scope_token <- st.next_scope_token + 1;
  st.next_scope_token

let rec release_all heap objs =
  match objs with
  | [] -> ()
  | o :: rest ->
    Rt.Heap.release_stack heap o;
    release_all heap rest

let pop_scope st fr =
  if fr.lazy_scopes > 0 then fr.lazy_scopes <- fr.lazy_scopes - 1
  else begin
    match fr.stack_objs with
    | [] :: rest -> fr.stack_objs <- rest
    | objs :: rest ->
      release_all st.heap objs;
      fr.stack_objs <- rest
    | [] -> ()
  end

let register_stack_obj fr obj =
  while fr.lazy_scopes > 0 do
    fr.stack_objs <- [] :: fr.stack_objs;
    fr.lazy_scopes <- fr.lazy_scopes - 1
  done;
  match fr.stack_objs with
  | objs :: rest -> fr.stack_objs <- (obj :: objs) :: rest
  | [] -> fr.stack_objs <- [ [ obj ] ]

(* Pin a value for the rest of the current statement so an in-callee GC
   cannot reclaim it before it reaches rooted storage. *)
let pin _st fr v =
  fr.temps <- v :: fr.temps;
  v

let trace_binding b k =
  match b with
  | Bunbound -> ()
  | Bdirect c -> Value.trace c.Value.v k
  | Bboxed (addr, c) ->
    k addr;
    Value.trace c.Value.v k

let iter_roots st (k : int -> unit) =
  Array.iter (fun b -> trace_binding b k) st.globals;
  List.iter
    (fun g ->
      List.iter
        (fun f ->
          Array.iter (fun b -> trace_binding b k) f.slots;
          List.iter (fun v -> Value.trace v k) f.temps;
          List.iter
            (fun (_, args) -> List.iter (fun v -> Value.trace v k) args)
            f.defers)
        g.g_frames)
    st.goroutines

(* ------------------------------------------------------------------ *)
(* Multi-domain runtime: context, output, fibers, STW handshake        *)
(* ------------------------------------------------------------------ *)

module Wsq = Gofree_sched.Wsq

let make_parctx ~nd ~seed ~yield_every : parctx =
  {
    p_nd = nd;
    p_queues = Array.init nd (fun _ -> Wsq.create ());
    p_mutex = Mutex.create ();
    p_work = Condition.create ();
    p_live = 0;
    p_running = 0;
    p_regs = [];
    p_yields = 0;
    p_budget = yield_every;
    p_steals = 0;
    p_spawns = 0;
    p_steps_done = 0;
    p_ic_hits = 0;
    p_ic_misses = 0;
    p_abort = None;
    p_gc_active = false;
    p_gc_cycle = None;
    p_out_mutex = Mutex.create ();
    p_rng = Atomic.make seed;
    p_dls = Domain.DLS.new_key (fun () -> 0);
  }

(* Append to the program's output.  Goroutines on different domains
   interleave whole lines (each print site builds one string), not
   bytes. *)
let emit_str st s =
  match st.par with
  | Some p when p.p_nd > 1 ->
    Mutex.lock p.p_out_mutex;
    Buffer.add_string st.output s;
    Mutex.unlock p.p_out_mutex
  | _ -> Buffer.add_string st.output s

(* Root enumeration for parallel runs: the registry in [p_regs] replaces
   the sequential [st.goroutines] list (same newest-first order), and —
   only when goroutines can actually sit queued across a GC, nd > 1 —
   pending spawn arguments are rooted too. *)
let iter_roots_par (p : parctx) ~(globals : binding array) (k : int -> unit) =
  Array.iter (fun b -> trace_binding b k) globals;
  List.iter
    (fun ((g : goroutine), (_ : state)) ->
      List.iter
        (fun f ->
          Array.iter (fun b -> trace_binding b k) f.slots;
          List.iter (fun v -> Value.trace v k) f.temps;
          List.iter
            (fun (_, args) -> List.iter (fun v -> Value.trace v k) args)
            f.defers)
        g.g_frames;
      if p.p_nd > 1 then List.iter (fun v -> Value.trace v k) g.g_pending)
    p.p_regs

let fiber_done p (g : goroutine) =
  Mutex.lock p.p_mutex;
  g.g_pending <- [];
  (match List.assq_opt g p.p_regs with
  | Some gst ->
    p.p_steps_done <- p.p_steps_done + gst.steps;
    p.p_ic_hits <- p.p_ic_hits + gst.ic_hits;
    p.p_ic_misses <- p.p_ic_misses + gst.ic_misses
  | None -> ());
  p.p_regs <- List.filter (fun (g', _) -> g' != g) p.p_regs;
  p.p_live <- p.p_live - 1;
  Condition.broadcast p.p_work;
  Mutex.unlock p.p_mutex

(** Package a goroutine body as a schedulable task.  The effect handler
    turns every [Sched.yield] into "re-enqueue my continuation on the
    domain that is running me right now" — read from domain-local
    storage at perform time, so a stolen goroutine requeues on the
    thief, not on the domain that first started it. *)
let fiber_task (p : parctx) (gst : state) (body : unit -> unit) : ptask =
  let open Effect.Deep in
  let g = gst.current in
  let run () =
    match_with body ()
      {
        retc = (fun () -> fiber_done p g);
        exnc =
          (fun e ->
            fiber_done p g;
            raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Sched.Yield ->
              Some
                (fun (k : (c, _) continuation) ->
                  let d = Domain.DLS.get p.p_dls in
                  Wsq.push p.p_queues.(d)
                    { tk_st = gst; tk_run = (fun () -> continue k ()) };
                  Mutex.lock p.p_mutex;
                  p.p_yields <- p.p_yields + 1;
                  Condition.broadcast p.p_work;
                  Mutex.unlock p.p_mutex)
            | _ -> None);
      }
  in
  { tk_st = gst; tk_run = run }

(** Parallel-mode goroutine spawn.  Each goroutine gets its own [state]
    copy — per-goroutine execution context (current goroutine, step/yield
    counters, scope tokens, IC stats) over physically shared program,
    heap, globals, output and scheduler — so a stolen fiber carries its
    context with it.  The new task lands on the spawning domain's local
    queue, Go-style. *)
let spawn_parallel st (p : parctx) fid args =
  Mutex.lock p.p_mutex;
  let g =
    { g_id = Sched.fresh_gid st.sched; g_frames = []; g_pending = args;
      g_stk_v = [||]; g_top_v = 0; g_stk_i = [||]; g_top_i = 0 }
  in
  (* The sequential path burns a second counter value per spawn
     ([Sched.spawn] also increments it); replay that so goroutine ids —
     and through [cur_thread] their mcache assignment — coincide. *)
  ignore (Sched.fresh_gid st.sched);
  let gst =
    { st with current = g; steps = 0; yield_at = st.config.yield_every;
      next_scope_token = 0; unwinding = None; ic_hits = 0; ic_misses = 0 }
  in
  p.p_regs <- (g, gst) :: p.p_regs;
  p.p_live <- p.p_live + 1;
  p.p_spawns <- p.p_spawns + 1;
  let body () =
    g.g_pending <- [];
    match gst.dispatch gst fid args with
    | _ -> ()
    | exception Panic v ->
      emit_str gst ("panic: " ^ Value.to_string v ^ "\n");
      raise (Panic v)
  in
  Wsq.push p.p_queues.(st.dom) (fiber_task p gst body);
  Condition.broadcast p.p_work;
  Mutex.unlock p.p_mutex

(* Stop-the-world GC rendezvous (nd > 1; single-domain runs collect
   sequentially).  Reached from a safepoint, i.e. from a domain counted
   in [p_running]:

   - If no handshake is active, this domain becomes the leader: it
     stops mutating (p_running--), waits for every other running domain
     to park at its own safepoint or drain back to the worker loop,
     then seeds the cycle from the roots, publishes it so parked
     domains can help, drives mark/sweep, applies, and releases.
   - If a handshake is already active, this domain is a responder: it
     parks here, helps the published cycle, and resumes once the leader
     finishes.

   Every allocating domain discovers GC pressure through its own pacing
   check ([gc_requested] is also re-read here), and non-allocating
   domains reach a safepoint at least every [yield_every] steps, so the
   world stops within one slice. *)
let par_gc st (p : parctx) =
  let heap = st.heap in
  Mutex.lock p.p_mutex;
  if p.p_gc_active then begin
    (* responder *)
    p.p_running <- p.p_running - 1;
    Condition.broadcast p.p_work;
    while p.p_gc_active && p.p_gc_cycle = None do
      Condition.wait p.p_work p.p_mutex
    done;
    (match p.p_gc_cycle with
    | Some c when p.p_gc_active ->
      Mutex.unlock p.p_mutex;
      Rt.Gc_collector.Par.run_helper c;
      Mutex.lock p.p_mutex
    | _ -> ());
    while p.p_gc_active do
      Condition.wait p.p_work p.p_mutex
    done;
    p.p_running <- p.p_running + 1;
    Mutex.unlock p.p_mutex
  end
  else if heap.Rt.Heap.gc_requested then begin
    (* leader *)
    p.p_gc_active <- true;
    p.p_running <- p.p_running - 1;
    Condition.broadcast p.p_work;
    while p.p_running > 0 do
      Condition.wait p.p_work p.p_mutex
    done;
    Mutex.unlock p.p_mutex;
    let c = Rt.Gc_collector.Par.start heap in
    Mutex.lock p.p_mutex;
    p.p_gc_cycle <- Some c;
    Condition.broadcast p.p_work;
    Mutex.unlock p.p_mutex;
    Rt.Gc_collector.Par.run_leader c;
    Mutex.lock p.p_mutex;
    p.p_gc_cycle <- None;
    p.p_gc_active <- false;
    p.p_running <- p.p_running + 1;
    Condition.broadcast p.p_work;
    Mutex.unlock p.p_mutex
  end
  else
    (* another leader collected between our fast-path check and here *)
    Mutex.unlock p.p_mutex

(* Safepoint slow path: budget, GC, sampling, yield.  Shared by the
   reference/closure engines (via [safepoint]) and the bytecode VM
   (whose fast path replicates [safepoint]'s guard on its own step
   counter). *)
let safepoint_slow st =
  if st.steps > st.config.max_steps then
    raise (Runtime_error "step budget exhausted (infinite loop?)");
  let heap = st.heap in
  if heap.Rt.Heap.gc_requested && not heap.Rt.Heap.config.Rt.Heap.gc_disabled
  then begin
    match st.par with
    | Some p when p.p_nd > 1 -> par_gc st p
    | _ -> Rt.Gc_collector.collect heap
  end;
  (match heap.Rt.Heap.sampler with
  | Some sampler when Rt.Sampler.due sampler ~step:st.steps ->
    Rt.Sampler.record sampler ~step:st.steps
      ~span_bytes:(Rt.Pageheap.used_bytes heap.Rt.Heap.pages)
      (Rt.Heap.merged_metrics heap)
  | _ -> ());
  if st.steps >= st.yield_at then begin
    st.yield_at <- st.steps + st.config.yield_every;
    Sched.yield ()
  end

(* Safepoint: maybe run a GC cycle; also the yield point. *)
let safepoint st =
  st.steps <- st.steps + 1;
  (cur_frame st).temps <- [];
  let heap = st.heap in
  if
    st.steps >= st.yield_at
    || heap.Rt.Heap.gc_requested
    || heap.Rt.Heap.sampler != None
    || st.steps > st.config.max_steps
  then safepoint_slow st

(* ------------------------------------------------------------------ *)
(* Allocation helpers                                                  *)
(* ------------------------------------------------------------------ *)

let alloc_obj st fr ~(site : Tast.alloc_site) ~category ~size ~payload :
    Rt.Heap.obj =
  if Decisions.site_is_heap st.decisions site then
    Rt.Heap.alloc_heap st.heap ~thread:(cur_thread st) ~category ~size
      ~payload
  else begin
    let obj =
      Rt.Heap.alloc_stack ~thread:(cur_thread st) st.heap
        ~scope:st.next_scope_token ~category ~size ~payload
    in
    register_stack_obj fr obj;
    obj
  end

(* Heap allocation regardless of site (append growth, map growth). *)
let alloc_heap_obj st ~category ~size ~payload =
  Rt.Heap.alloc_heap st.heap ~thread:(cur_thread st) ~category ~size
    ~payload

let make_slice_obj st fr ~site ~elem_size ~len ~cap ~zero_of : Value.value =
  let cap = max cap len in
  let cells = Array.init cap (fun _ -> Value.cell (zero_of ())) in
  let size = max 1 (cap * elem_size) in
  let obj =
    alloc_obj st fr ~site ~category:Rt.Metrics.Cat_slice ~size
      ~payload:(Value.Pcells cells)
  in
  pin st fr
    (Value.VSlice { Value.s_addr = obj.Rt.Heap.addr; s_cells = cells;
                    s_off = 0; s_len = len })

let bucket_overhead = 16

let buckets_bytes ~entry_size ~nbuckets =
  nbuckets * ((8 * entry_size) + bucket_overhead)

let make_map_obj st fr ~(site : Tast.alloc_site) : Value.value =
  let entry_size = max 2 site.Tast.site_elem_size in
  let nbuckets = 1 in
  let bsize = buckets_bytes ~entry_size ~nbuckets in
  let buckets_obj =
    alloc_obj st fr ~site ~category:Rt.Metrics.Cat_map ~size:bsize
      ~payload:(Value.Pbuckets (Array.make nbuckets []))
  in
  let md =
    {
      Value.md_buckets = buckets_obj.Rt.Heap.addr;
      md_nbuckets = nbuckets;
      md_count = 0;
      md_entry_size = entry_size;
      md_version = 0;
    }
  in
  let header =
    alloc_obj st fr ~site ~category:Rt.Metrics.Cat_map ~size:48
      ~payload:(Value.Pmap md)
  in
  pin st fr (Value.VMap header.Rt.Heap.addr)

(* ------------------------------------------------------------------ *)
(* Map operations (§4.6.2)                                             *)
(* ------------------------------------------------------------------ *)

let map_data st addr : Value.map_data * (Value.value * Value.value) list array =
  match Rt.Heap.find_obj st.heap addr with
  | Some { Rt.Heap.payload = Value.Pmap md; _ } -> begin
    match Rt.Heap.find_obj st.heap md.Value.md_buckets with
    | Some { Rt.Heap.payload = Value.Pbuckets buckets; _ } -> (md, buckets)
    | Some { Rt.Heap.poisoned = true; _ } | None ->
      raise
        (Value.Corruption
           (Printf.sprintf "map buckets freed while map is live (%s)"
              (Rt.Heap.death_of st.heap md.Value.md_buckets)))
    | Some _ -> raise (Runtime_error "corrupt map buckets")
  end
  | Some { Rt.Heap.poisoned = true; _ } | None ->
    raise
      (Value.Corruption
         (Printf.sprintf "map header %d freed while map is live (%s)" addr
            (Rt.Heap.death_of st.heap addr)))
  | Some _ -> raise (Runtime_error "not a map")

let map_grow st addr (md : Value.map_data) old_buckets =
  let nbuckets = md.Value.md_nbuckets * 2 in
  let buckets = Array.make nbuckets [] in
  Array.iter
    (fun entries ->
      List.iter
        (fun (k, v) ->
          let idx = Value.hash_key k land max_int mod nbuckets in
          buckets.(idx) <- (k, v) :: buckets.(idx))
        entries)
    old_buckets;
  let bsize =
    buckets_bytes ~entry_size:md.Value.md_entry_size ~nbuckets
  in
  let old_addr = md.Value.md_buckets in
  (* New bucket arrays of a growing map always come from the heap: growth
     happens inside the runtime where no static size is known — exactly
     Go's behaviour, where only the initial buckets of a non-escaping map
     can live on the stack. *)
  let new_obj =
    alloc_heap_obj st ~category:Rt.Metrics.Cat_map ~size:bsize
      ~payload:(Value.Pbuckets buckets)
  in
  md.Value.md_buckets <- new_obj.Rt.Heap.addr;
  md.Value.md_nbuckets <- nbuckets;
  md.Value.md_version <- md.Value.md_version + 1;
  ignore addr;
  (* GrowMapAndFreeOld (§4.6.2): the abandoned bucket array is in the
     map's exclusive ownership — free it explicitly.  Only the GoFree
     runtime does this; stock Go leaves the old array to GC. *)
  if st.heap.Rt.Heap.config.Rt.Heap.grow_map_free_old then
    ignore
      (Rt.Tcfree.tcfree st.heap ~thread:(cur_thread st)
         ~source:Rt.Metrics.Src_map_grow old_addr)

(* Bucket-chain scans, written as top-level recursions so a map
   operation allocates no predicate closures.  Chains stay short (Go's
   load factor caps them at ~6.5 entries), so recursion depth is
   trivial.  Insert keeps the original key of a replaced entry and the
   entry order, exactly like the List.map formulation it replaces. *)

let rec bucket_replace key v entries =
  match entries with
  | [] -> None
  | ((k, _) as hd) :: rest ->
    if Value.equal_key k key then Some ((k, v) :: rest)
    else begin
      match bucket_replace key v rest with
      | Some rest' -> Some (hd :: rest')
      | None -> None
    end

let rec bucket_mem key entries =
  match entries with
  | [] -> false
  | (k, _) :: rest -> Value.equal_key k key || bucket_mem key rest

(* Drop [key]'s entry; only called when present (no duplicate keys can
   exist in a chain, so dropping the first match is dropping them
   all). *)
let rec bucket_drop key entries =
  match entries with
  | [] -> []
  | ((k, _) as hd) :: rest ->
    if Value.equal_key k key then rest else hd :: bucket_drop key rest

let map_store st addr key v =
  let md, buckets = map_data st addr in
  let idx = Value.hash_key key land max_int mod md.Value.md_nbuckets in
  let entries = buckets.(idx) in
  match bucket_replace key v entries with
  | Some entries' ->
    buckets.(idx) <- entries';
    md.Value.md_version <- md.Value.md_version + 1
  | None ->
    buckets.(idx) <- (key, v) :: entries;
    md.Value.md_version <- md.Value.md_version + 1;
    md.Value.md_count <- md.Value.md_count + 1;
    (* Go grows at load factor 6.5 entries per bucket. *)
    if md.Value.md_count * 2 > 13 * md.Value.md_nbuckets then
      map_grow st addr md buckets

let rec bucket_get key entries ~zero =
  match entries with
  | [] -> zero ()
  | (k, v) :: rest ->
    if Value.equal_key k key then v else bucket_get key rest ~zero

let map_get st addr key ~zero =
  let md, buckets = map_data st addr in
  let idx = Value.hash_key key land max_int mod md.Value.md_nbuckets in
  bucket_get key buckets.(idx) ~zero

let map_delete st addr key =
  let md, buckets = map_data st addr in
  let idx = Value.hash_key key land max_int mod md.Value.md_nbuckets in
  md.Value.md_version <- md.Value.md_version + 1;
  if bucket_mem key buckets.(idx) then begin
    buckets.(idx) <- bucket_drop key buckets.(idx);
    md.Value.md_count <- md.Value.md_count - 1
  end

let map_len st addr =
  let md, _ = map_data st addr in
  md.Value.md_count

(* Key snapshot for [for k := range m]: deterministic bucket order,
   mutation during iteration is well-defined. *)
let map_range_keys st addr : Value.value list =
  let _, buckets = map_data st addr in
  let keys =
    Array.fold_left
      (fun acc entries -> List.rev_append (List.map fst entries) acc)
      [] buckets
  in
  List.rev keys

(* ------------------------------------------------------------------ *)
(* Bindings                                                            *)
(* ------------------------------------------------------------------ *)

let lookup_binding st (v : Tast.var) : binding =
  match v.Tast.v_kind with
  | Tast.Vglobal -> begin
    match st.globals.(Layout.slot st.layout v) with
    | Bunbound -> raise (Runtime_error ("unbound global " ^ v.Tast.v_name))
    | b -> b
  end
  | _ -> begin
    match (cur_frame st).slots.(Layout.slot st.layout v) with
    | Bunbound ->
      raise (Runtime_error ("unbound variable " ^ v.Tast.v_name))
    | b -> b
  end

let binding_cell = function
  | Bdirect c | Bboxed (_, c) -> c
  | Bunbound -> raise (Runtime_error "unbound variable")

let zero_of st ty () = Value.zero st.program.Tast.p_tenv ty

(* Declare a variable: boxed variables get a 1-cell heap object. *)
let declare_var st fr (v : Tast.var) (value : Value.value) =
  let binding =
    if Decisions.var_is_boxed st.decisions v then begin
      let c = Value.cell value in
      let size = Types.size_of st.program.Tast.p_tenv v.Tast.v_ty in
      let obj =
        alloc_heap_obj st ~category:Rt.Metrics.Cat_other ~size:(max 8 size)
          ~payload:(Value.Pcells [| c |])
      in
      Bboxed (obj.Rt.Heap.addr, c)
    end
    else Bdirect (Value.cell value)
  in
  fr.slots.(Layout.slot st.layout v) <- binding

let truthy = function
  | Value.VBool b -> b
  | _ -> raise (Runtime_error "condition is not a bool")

let as_int = function
  | Value.VInt n -> n
  | _ -> raise (Runtime_error "expected an int")

let rec eval_binop op (a : Value.value) (b : Value.value) : Value.value =
  let open Value in
  match (op, a, b) with
  | Ast.Badd, VInt x, VInt y -> VInt (x + y)
  | Ast.Badd, VFloat x, VFloat y -> VFloat (x +. y)
  | Ast.Badd, VStr x, VStr y -> VStr (x ^ y)
  | Ast.Bsub, VInt x, VInt y -> VInt (x - y)
  | Ast.Bsub, VFloat x, VFloat y -> VFloat (x -. y)
  | Ast.Bmul, VInt x, VInt y -> VInt (x * y)
  | Ast.Bmul, VFloat x, VFloat y -> VFloat (x *. y)
  | Ast.Bdiv, VInt _, VInt 0 -> raise (Panic (VStr "integer divide by zero"))
  | Ast.Bdiv, VInt x, VInt y -> VInt (x / y)
  | Ast.Bdiv, VFloat x, VFloat y -> VFloat (x /. y)
  | Ast.Bmod, VInt _, VInt 0 -> raise (Panic (VStr "integer divide by zero"))
  | Ast.Bmod, VInt x, VInt y -> VInt (x mod y)
  | Ast.Band_bits, VInt x, VInt y -> VInt (x land y)
  | Ast.Bor_bits, VInt x, VInt y -> VInt (x lor y)
  | Ast.Bxor, VInt x, VInt y -> VInt (x lxor y)
  | Ast.Bshl, VInt _, VInt y when y < 0 ->
    raise (Panic (VStr "negative shift amount"))
  | Ast.Bshl, VInt x, VInt y -> VInt (if y >= 63 then 0 else x lsl y)
  | Ast.Bshr, VInt _, VInt y when y < 0 ->
    raise (Panic (VStr "negative shift amount"))
  | Ast.Bshr, VInt x, VInt y -> VInt (if y >= 63 then 0 else x asr y)
  | Ast.Blt, VInt x, VInt y -> VBool (x < y)
  | Ast.Ble, VInt x, VInt y -> VBool (x <= y)
  | Ast.Bgt, VInt x, VInt y -> VBool (x > y)
  | Ast.Bge, VInt x, VInt y -> VBool (x >= y)
  | Ast.Blt, VFloat x, VFloat y -> VBool (x < y)
  | Ast.Ble, VFloat x, VFloat y -> VBool (x <= y)
  | Ast.Bgt, VFloat x, VFloat y -> VBool (x > y)
  | Ast.Bge, VFloat x, VFloat y -> VBool (x >= y)
  | Ast.Blt, VStr x, VStr y -> VBool (String.compare x y < 0)
  | Ast.Ble, VStr x, VStr y -> VBool (String.compare x y <= 0)
  | Ast.Bgt, VStr x, VStr y -> VBool (String.compare x y > 0)
  | Ast.Bge, VStr x, VStr y -> VBool (String.compare x y >= 0)
  | Ast.Beq, x, y -> VBool (value_eq x y)
  | Ast.Bne, x, y -> VBool (not (value_eq x y))
  | (Ast.Band | Ast.Bor), _, _ ->
    raise (Runtime_error "logical operators are handled lazily")
  | _ -> raise (Runtime_error "invalid binary operands")

and value_eq (a : Value.value) (b : Value.value) =
  let open Value in
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> x = y
  | VBool x, VBool y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VNil, VNil -> true
  | VNil, (VPtr _ | VSlice _ | VMap _) | (VPtr _ | VSlice _ | VMap _), VNil
    ->
    false
  | VPtr x, VPtr y -> x.p_cell == y.p_cell
  | VMap x, VMap y -> x = y
  | VSlice x, VSlice y ->
    x.s_cells == y.s_cells && x.s_off = y.s_off && x.s_len = y.s_len
  | VPoison, _ | _, VPoison -> raise (Corruption "comparison with freed memory")
  | _ -> false

(* The inserted explicit free (§4.5), applied to an already-resolved
   binding: read the pointer's current value and hand the referent to the
   matching tcfree variant (Table 4).  Shared by both execution modes. *)
let tcfree_binding st (b : binding) (kind : Tast.free_kind) =
  let thread = cur_thread st in
  match (binding_cell b).Value.v with
  | Value.VSlice s when kind = Tast.Free_slice ->
    (* TcfreeSlice: unwrap the backing array's address *)
    ignore
      (Rt.Tcfree.tcfree st.heap ~thread ~source:Rt.Metrics.Src_slice
         s.Value.s_addr)
  | Value.VMap addr when kind = Tast.Free_map -> begin
    (* TcfreeMap: unwrap the bucket array's address *)
    match Rt.Heap.find_obj st.heap addr with
    | Some { Rt.Heap.payload = Value.Pmap md; _ } ->
      (* invalidate any inline cache that still points at this map *)
      md.Value.md_version <- md.Value.md_version + 1;
      ignore
        (Rt.Tcfree.tcfree st.heap ~thread ~source:Rt.Metrics.Src_map
           md.Value.md_buckets);
      ignore
        (Rt.Tcfree.tcfree st.heap ~thread ~source:Rt.Metrics.Src_map addr)
    | _ -> ()
  end
  | Value.VPtr p when kind = Tast.Free_obj ->
    if p.Value.p_owner > 0 then
      ignore
        (Rt.Tcfree.tcfree st.heap ~thread ~source:Rt.Metrics.Src_slice
           p.Value.p_owner)
  | Value.VNil | Value.VPoison -> ()
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Calls, defers, panics                                               *)
(* ------------------------------------------------------------------ *)

let rec dispatch_defers st defers =
  match defers with
  | [] -> ()
  | (fid, args) :: rest ->
    ignore (st.dispatch st fid args);
    dispatch_defers st rest

let run_defers st frame =
  match frame.defers with
  | [] -> ()  (* the overwhelmingly common case: allocation-free *)
  | defers ->
    frame.defers <- [];
    dispatch_defers st defers

let rec release_scopes heap scopes =
  match scopes with
  | [] -> ()
  | objs :: rest ->
    release_all heap objs;
    release_scopes heap rest

let pop_all_scopes st frame =
  frame.lazy_scopes <- 0;
  match frame.stack_objs with
  | [] -> ()
  | scopes ->
    frame.stack_objs <- [];
    release_scopes st.heap scopes

(** The shared call protocol: push a pre-sized frame, bind parameters,
    run the body, then run defers / pop scopes on every exit path —
    normal fall-through (zero results), [return], and panic unwinding
    with its recover handshake.  Both execution modes call functions
    through here, parameterized by how the body runs. *)
let call_fn st (f : Tast.func) ~nslots
    ~(bind : state -> frame -> Value.value list -> unit)
    ~(body : state -> frame -> unit) ~(zeros : state -> Value.value list)
    (args : Value.value list) : Value.value list =
  let frame =
    {
      fn = f;
      slots = Array.make nslots Bunbound;
      defers = [];
      stack_objs = [];
      lazy_scopes = 0;
      temps = args;  (* keep args pinned until bound *)
      gid = st.current.g_id;
    }
  in
  st.current.g_frames <- frame :: st.current.g_frames;
  match
    bind st frame args;
    body st frame
  with
  | () ->
    (* fell off the end: zero values if the function declares results *)
    let results = zeros st in
    run_defers st frame;
    pop_all_scopes st frame;
    st.current.g_frames <- List.tl st.current.g_frames;
    results
  | exception Return_values vs ->
    run_defers st frame;
    pop_all_scopes st frame;
    st.current.g_frames <- List.tl st.current.g_frames;
    vs
  | exception Panic v ->
    (* run this frame's defers while unwinding; a recover() inside one of
       them clears the panic and the function returns zero values *)
    let outer = st.unwinding in
    st.unwinding <- Some v;
    run_defers st frame;
    pop_all_scopes st frame;
    st.current.g_frames <- List.tl st.current.g_frames;
    (match st.unwinding with
    | None ->
      (* recovered *)
      st.unwinding <- outer;
      zeros st
    | Some v ->
      st.unwinding <- outer;
      raise (Panic v))

(* ------------------------------------------------------------------ *)
(* Expression evaluation (reference tree-walker)                       *)
(* ------------------------------------------------------------------ *)

let rec eval st (e : Tast.expr) : Value.value =
  match e.Tast.desc with
  | Tast.Tint n -> Value.VInt n
  | Tast.Tfloat f -> Value.VFloat f
  | Tast.Tbool b -> Value.VBool b
  | Tast.Tstring s -> Value.VStr s
  | Tast.Tnil -> Value.VNil
  | Tast.Tvar v -> Value.read_cell (binding_cell (lookup_binding st v))
  | Tast.Tbinop (Ast.Band, a, b) ->
    if truthy (eval st a) then eval st b else Value.VBool false
  | Tast.Tbinop (Ast.Bor, a, b) ->
    if truthy (eval st a) then Value.VBool true else eval st b
  | Tast.Tbinop (op, a, b) ->
    let va = eval st a in
    let vb = eval st b in
    eval_binop op va vb
  | Tast.Tunop (Ast.Uneg, a) -> begin
    match eval st a with
    | Value.VInt n -> Value.VInt (-n)
    | Value.VFloat f -> Value.VFloat (-.f)
    | _ -> raise (Runtime_error "cannot negate")
  end
  | Tast.Tunop (Ast.Unot, a) -> Value.VBool (not (truthy (eval st a)))
  | Tast.Taddr lv -> eval_addr st lv
  | Tast.Tderef a -> begin
    match eval st a with
    | Value.VPtr p -> Value.read_cell p.Value.p_cell
    | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
    | _ -> raise (Runtime_error "dereference of a non-pointer")
  end
  | Tast.Tindex (a, i) -> begin
    let va = eval st a in
    let vi = as_int (eval st i) in
    match va with
    | Value.VSlice s ->
      if vi < 0 || vi >= s.Value.s_len then
        raise (Panic (Value.VStr "index out of range"));
      Value.read_cell s.Value.s_cells.(s.Value.s_off + vi)
    | Value.VStr s ->
      if vi < 0 || vi >= String.length s then
        raise (Panic (Value.VStr "index out of range"));
      Value.VInt (Char.code s.[vi])
    | Value.VNil -> raise (Panic (Value.VStr "index of nil slice"))
    | _ -> raise (Runtime_error "cannot index this value")
  end
  | Tast.Tmap_get (m, k) -> begin
    let vm = eval st m in
    let vk = eval st k in
    let zero = zero_of st e.Tast.ty in
    match vm with
    | Value.VMap addr -> map_get st addr vk ~zero
    | Value.VNil -> zero ()  (* reading a nil map yields the zero value *)
    | _ -> raise (Runtime_error "not a map")
  end
  | Tast.Tfield (a, idx, name) -> begin
    let base =
      match eval st a with
      | Value.VPtr p -> Value.read_cell p.Value.p_cell
      | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
      | v -> v
    in
    match base with
    | Value.VStruct cells -> Value.read_cell cells.(idx)
    | _ -> raise (Runtime_error ("field access ." ^ name ^ " on non-struct"))
  end
  | Tast.Tcall (name, args) -> begin
    match call_function st name (List.map (fun a -> eval st a) args) with
    | [] -> Value.VUnit
    | [ v ] -> pin st (cur_frame st) v
    | vs -> pin st (cur_frame st) (Value.VTuple vs)
  end
  | Tast.Tmake_slice (site, elem, len, cap) ->
    let len = as_int (eval st len) in
    if len < 0 then raise (Panic (Value.VStr "makeslice: negative length"));
    let cap =
      match cap with Some c -> as_int (eval st c) | None -> len
    in
    make_slice_obj st (cur_frame st) ~site
      ~elem_size:site.Tast.site_elem_size ~len ~cap ~zero_of:(zero_of st elem)
  | Tast.Tmake_map (site, _, _) -> make_map_obj st (cur_frame st) ~site
  | Tast.Tnew (site, ty) ->
    let c = Value.cell (Value.zero st.program.Tast.p_tenv ty) in
    let obj =
      alloc_obj st (cur_frame st) ~site ~category:Rt.Metrics.Cat_other
        ~size:(max 8 site.Tast.site_elem_size)
        ~payload:(Value.Pcells [| c |])
    in
    pin st (cur_frame st)
      (Value.VPtr { Value.p_owner = obj.Rt.Heap.addr; p_cell = c })
  | Tast.Tslice_lit (site, _, es) ->
    let vs = List.map (fun e -> Value.copy (eval st e)) es in
    let cells = Array.of_list (List.map Value.cell vs) in
    let size = max 1 (Array.length cells * site.Tast.site_elem_size) in
    let obj =
      alloc_obj st (cur_frame st) ~site ~category:Rt.Metrics.Cat_slice ~size
        ~payload:(Value.Pcells cells)
    in
    pin st (cur_frame st)
      (Value.VSlice
         { Value.s_addr = obj.Rt.Heap.addr; s_cells = cells; s_off = 0;
           s_len = Array.length cells })
  | Tast.Tstruct_lit (_, es) ->
    Value.VStruct
      (Array.of_list
         (List.map (fun e -> Value.cell (Value.copy (eval st e))) es))
  | Tast.Taddr_struct_lit (site, _, es) ->
    let v =
      Value.VStruct
        (Array.of_list
           (List.map (fun e -> Value.cell (Value.copy (eval st e))) es))
    in
    let c = Value.cell v in
    let obj =
      alloc_obj st (cur_frame st) ~site ~category:Rt.Metrics.Cat_other
        ~size:(max 8 site.Tast.site_elem_size)
        ~payload:(Value.Pcells [| c |])
    in
    pin st (cur_frame st)
      (Value.VPtr { Value.p_owner = obj.Rt.Heap.addr; p_cell = c })
  | Tast.Tappend (site, s, vs) ->
    let base = eval st s in
    let elems = List.map (fun v -> Value.copy (eval st v)) vs in
    eval_append st (cur_frame st) ~site base elems
  | Tast.Tlen a -> begin
    match eval st a with
    | Value.VSlice s -> Value.VInt s.Value.s_len
    | Value.VStr s -> Value.VInt (String.length s)
    | Value.VMap addr -> Value.VInt (map_len st addr)
    | Value.VNil -> Value.VInt 0
    | _ -> raise (Runtime_error "len of unsupported value")
  end
  | Tast.Tcap a -> begin
    match eval st a with
    | Value.VSlice s ->
      Value.VInt (Array.length s.Value.s_cells - s.Value.s_off)
    | Value.VNil -> Value.VInt 0
    | _ -> raise (Runtime_error "cap of unsupported value")
  end
  | Tast.Titoa a -> Value.VStr (string_of_int (as_int (eval st a)))
  | Tast.Trand a -> Value.VInt (rand_int st (as_int (eval st a)))
  | Tast.Tsubstr (s, a, b) -> begin
    match eval st s with
    | Value.VStr s ->
      let lo = as_int (eval st a) in
      let hi = as_int (eval st b) in
      if lo < 0 || hi > String.length s || lo > hi then
        raise (Panic (Value.VStr "substr out of range"))
      else Value.VStr (String.sub s lo (hi - lo))
    | _ -> raise (Runtime_error "substr on non-string")
  end
  | Tast.Tslice_sub (a, lo, hi) -> begin
    let base = eval st a in
    let bound default = function
      | Some e -> as_int (eval st e)
      | None -> default
    in
    match base with
    | Value.VSlice s ->
      let cap = Array.length s.Value.s_cells - s.Value.s_off in
      let lo = bound 0 lo in
      let hi = bound s.Value.s_len hi in
      if lo < 0 || hi > cap || lo > hi then
        raise (Panic (Value.VStr "slice bounds out of range"));
      Value.VSlice
        { s with Value.s_off = s.Value.s_off + lo; s_len = hi - lo }
    | Value.VStr str ->
      let lo = bound 0 lo in
      let hi = bound (String.length str) hi in
      if lo < 0 || hi > String.length str || lo > hi then
        raise (Panic (Value.VStr "slice bounds out of range"));
      Value.VStr (String.sub str lo (hi - lo))
    | Value.VNil ->
      let lo = bound 0 lo and hi = bound 0 hi in
      if lo <> 0 || hi <> 0 then
        raise (Panic (Value.VStr "slice bounds out of range"));
      Value.VNil
    | _ -> raise (Runtime_error "slice of unsupported value")
  end
  | Tast.Tcopy (dst, src) -> begin
    let vd = eval st dst in
    let vs = eval st src in
    match (vd, vs) with
    | Value.VSlice d, Value.VSlice s -> slice_copy d s
    | (Value.VNil, _ | _, Value.VNil) -> Value.VInt 0
    | _ -> raise (Runtime_error "copy on non-slices")
  end
  | Tast.Tmap_get_ok (m, k) -> begin
    let vm = eval st m in
    let vk = eval st k in
    let zero () =
      match e.Tast.ty with
      | Types.Tuple [ vt; _ ] -> Value.zero st.program.Tast.p_tenv vt
      | _ -> Value.VUnit
    in
    match vm with
    | Value.VMap addr ->
      let present = ref true in
      let v = map_get st addr vk ~zero:(fun () -> present := false; zero ()) in
      Value.VTuple [ v; Value.VBool !present ]
    | Value.VNil -> Value.VTuple [ zero (); Value.VBool false ]
    | _ -> raise (Runtime_error "not a map")
  end
  | Tast.Trecover -> recover st

and recover st =
  match st.unwinding with
  | Some v ->
    (* stop the unwind; hand the panic message to the program *)
    st.unwinding <- None;
    Value.VStr (Value.to_string v)
  | None -> Value.VStr ""

and slice_copy (d : Value.slice) (s : Value.slice) : Value.value =
  (* memmove semantics: snapshot the source first so overlapping views
     of one backing array copy correctly, like Go *)
  let n = min d.Value.s_len s.Value.s_len in
  let snapshot =
    Array.init n (fun i ->
        Value.copy (Value.read_cell s.Value.s_cells.(s.Value.s_off + i)))
  in
  for i = 0 to n - 1 do
    d.Value.s_cells.(d.Value.s_off + i).Value.v <- snapshot.(i)
  done;
  Value.VInt n

and eval_append st fr ~site base elems : Value.value =
  let open Value in
  let old_len, old_off, old_cells =
    match base with
    | VSlice s -> (s.s_len, s.s_off, s.s_cells)
    | VNil -> (0, 0, [||])
    | VPoison -> raise (Corruption "append to freed slice")
    | _ -> raise (Runtime_error "append to non-slice")
  in
  let n = List.length elems in
  let new_len = old_len + n in
  if old_off + new_len <= Array.length old_cells then begin
    (* room within the view's capacity: write in place *)
    List.iteri
      (fun i v -> old_cells.(old_off + old_len + i).v <- v)
      elems;
    match base with
    | VSlice s -> VSlice { s with s_len = new_len }
    | _ -> assert false
  end
  else begin
    let old_cap = Array.length old_cells - old_off in
    let new_cap = max (max (2 * old_cap) new_len) 4 in
    let cells =
      Array.init new_cap (fun i ->
          if i < old_len then
            Value.cell (Value.read_cell old_cells.(old_off + i))
          else Value.cell VNil)
    in
    List.iteri (fun i v -> cells.(old_len + i).v <- v) elems;
    let size = max 1 (new_cap * site.Tast.site_elem_size) in
    (* growth arrays always come from the heap (§4.6.1) *)
    let obj =
      alloc_heap_obj st ~category:Rt.Metrics.Cat_slice ~size
        ~payload:(Pcells cells)
    in
    ignore site;
    pin st fr
      (VSlice
         { s_addr = obj.Rt.Heap.addr; s_cells = cells; s_off = 0;
           s_len = new_len })
  end

(* Address-of: produce a pointer value. *)
and eval_addr st (lv : Tast.lvalue) : Value.value =
  match lv with
  | Tast.Lvar v -> begin
    match lookup_binding st v with
    | Bdirect c -> Value.VPtr { Value.p_owner = 0; p_cell = c }
    | Bboxed (addr, c) -> Value.VPtr { Value.p_owner = addr; p_cell = c }
    | Bunbound -> raise (Runtime_error "unbound variable")
  end
  | Tast.Lderef e -> eval st e
  | Tast.Lindex (a, i) -> begin
    let va = eval st a in
    let vi = as_int (eval st i) in
    match va with
    | Value.VSlice s ->
      if vi < 0 || vi >= s.Value.s_len then
        raise (Panic (Value.VStr "index out of range"));
      Value.VPtr
        { Value.p_owner = s.Value.s_addr;
          p_cell = s.Value.s_cells.(s.Value.s_off + vi) }
    | _ -> raise (Runtime_error "cannot take address of this element")
  end
  | Tast.Lmap _ -> raise (Runtime_error "cannot take address of map element")
  | Tast.Lfield (base, idx, _) -> begin
    let owner, cells =
      match base.Tast.ty with
      | Types.Ptr _ -> begin
        (* pointer base: the field cell lives inside the pointee *)
        match eval st base with
        | Value.VPtr p -> begin
          match Value.read_cell p.Value.p_cell with
          | Value.VStruct cells -> (p.Value.p_owner, cells)
          | _ -> raise (Runtime_error "field of non-struct")
        end
        | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
        | _ -> raise (Runtime_error "field of non-pointer")
      end
      | _ -> begin
        (* struct-valued base: find its storage without copying *)
        match base.Tast.desc with
        | Tast.Tvar v -> begin
          let c, owner =
            match lookup_binding st v with
            | Bdirect c -> (c, 0)
            | Bboxed (addr, c) -> (c, addr)
            | Bunbound -> raise (Runtime_error "unbound variable")
          in
          match Value.read_cell c with
          | Value.VStruct cells -> (owner, cells)
          | _ -> raise (Runtime_error "field of non-struct")
        end
        | _ -> begin
          (* nested struct value (s.inner.f, a[i].f, …): VStruct shares
             its cells, so evaluating the base still aliases the
             storage.  The owner is conservatively the base's owning
             object when it is an element/deref; for pure temporaries
             there is no owner. *)
          match eval st base with
          | Value.VStruct cells -> (owner_of_struct_base st base, cells)
          | _ -> raise (Runtime_error "field of non-struct")
        end
      end
    in
    Value.VPtr { Value.p_owner = owner; p_cell = cells.(idx) }
  end

(* The heap object owning the storage of a struct-valued expression, for
   pointers created into nested fields; 0 when it is frame-local. *)
and owner_of_struct_base st (e : Tast.expr) : int =
  match e.Tast.desc with
  | Tast.Tfield (inner, _, _) -> begin
    match inner.Tast.ty with
    | Types.Ptr _ -> begin
      match eval st inner with
      | Value.VPtr p -> p.Value.p_owner
      | _ -> 0
    end
    | _ -> owner_of_struct_base st inner
  end
  | Tast.Tindex (arr, _) -> begin
    match eval st arr with Value.VSlice s -> s.Value.s_addr | _ -> 0
  end
  | Tast.Tderef p -> begin
    match eval st p with Value.VPtr ptr -> ptr.Value.p_owner | _ -> 0
  end
  | _ -> 0

(* An lvalue resolved to mutable storage. *)
and eval_lvalue_target st (lv : Tast.lvalue) :
    [ `Cell of Value.cell | `Map of int * Value.value ] =
  match lv with
  | Tast.Lvar v -> `Cell (binding_cell (lookup_binding st v))
  | Tast.Lderef e -> begin
    match eval st e with
    | Value.VPtr p -> `Cell p.Value.p_cell
    | Value.VNil -> raise (Panic (Value.VStr "nil pointer dereference"))
    | _ -> raise (Runtime_error "assignment through non-pointer")
  end
  | Tast.Lindex (a, i) -> begin
    let va = eval st a in
    let vi = as_int (eval st i) in
    match va with
    | Value.VSlice s ->
      if vi < 0 || vi >= s.Value.s_len then
        raise (Panic (Value.VStr "index out of range"));
      `Cell s.Value.s_cells.(s.Value.s_off + vi)
    | Value.VNil -> raise (Panic (Value.VStr "index of nil slice"))
    | _ -> raise (Runtime_error "cannot assign into this value")
  end
  | Tast.Lmap (m, k) -> begin
    let vm = eval st m in
    let vk = eval st k in
    match vm with
    | Value.VMap addr -> `Map (addr, vk)
    | Value.VNil ->
      raise (Panic (Value.VStr "assignment to entry in nil map"))
    | _ -> raise (Runtime_error "not a map")
  end
  | Tast.Lfield (base, idx, _) -> begin
    match eval_addr st (Tast.Lfield (base, idx, "")) with
    | Value.VPtr p -> `Cell p.Value.p_cell
    | _ -> raise (Runtime_error "bad field target")
  end

and assign st (lv : Tast.lvalue) (v : Value.value) =
  match eval_lvalue_target st lv with
  | `Cell c -> c.Value.v <- Value.copy v
  | `Map (addr, key) -> map_store st addr key (Value.copy v)

and call_function st name (args : Value.value list) : Value.value list =
  match Layout.func_id st.layout name with
  | Some fid -> st.dispatch st fid args
  | None -> raise (Runtime_error ("undefined function " ^ name))

(** Reference call path: interpret the function body by tree-walking.
    The default [dispatch] of a state. *)
and call_by_id st fid (args : Value.value list) : Value.value list =
  let f = st.layout.Layout.l_funcs.(fid) in
  call_fn st f ~nslots:st.layout.Layout.l_nslots.(fid)
    ~bind:(fun st frame args ->
      List.iter2
        (fun p arg -> declare_var st frame p (Value.copy arg))
        f.Tast.f_params args)
    ~body:(fun st _frame -> exec_block st f.Tast.f_body)
    ~zeros:(fun st ->
      List.map
        (fun ty -> Value.zero st.program.Tast.p_tenv ty)
        f.Tast.f_results)
    args

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_block st (b : Tast.block) =
  ignore (push_scope st (cur_frame st));
  match List.iter (exec_stmt st) b.Tast.b_stmts with
  | () -> pop_scope st (cur_frame st)
  | exception e ->
    pop_scope st (cur_frame st);
    raise e

and exec_stmt st (s : Tast.stmt) =
  safepoint st;
  match s with
  | Tast.Sdecl (v, init) ->
    let value =
      match init with
      | Some e -> Value.copy (eval st e)
      | None -> Value.zero st.program.Tast.p_tenv v.Tast.v_ty
    in
    declare_var st (cur_frame st) v value
  | Tast.Smulti_decl (vars, e) -> begin
    match eval st e with
    | Value.VTuple vs when List.length vs = List.length vars ->
      List.iter2
        (fun v value -> declare_var st (cur_frame st) v (Value.copy value))
        vars vs
    | _ -> raise (Runtime_error "multi-value declaration mismatch")
  end
  | Tast.Sassign (lv, e) -> assign st lv (eval st e)
  | Tast.Smulti_assign (lvs, e) -> begin
    match eval st e with
    | Value.VTuple vs when List.length vs = List.length lvs ->
      (* resolve targets left to right, then assign *)
      List.iter2 (fun lv v -> assign st lv v) lvs vs
    | _ -> raise (Runtime_error "multi-value assignment mismatch")
  end
  | Tast.Sexpr e -> ignore (eval st e)
  | Tast.Sif (c, b1, b2) ->
    if truthy (eval st c) then exec_block st b1
    else Option.iter (exec_block st) b2
  | Tast.Sfor (init, cond, post, body) ->
    ignore (push_scope st (cur_frame st));
    let cleanup f = match f () with
      | x -> pop_scope st (cur_frame st); x
      | exception e -> pop_scope st (cur_frame st); raise e
    in
    cleanup (fun () ->
        Option.iter (exec_stmt st) init;
        let rec loop () =
          safepoint st;
          let continue_loop =
            match cond with Some c -> truthy (eval st c) | None -> true
          in
          if continue_loop then begin
            (match exec_block st body with
            | () -> Option.iter (exec_stmt st) post
            | exception Break_loop -> raise Exit
            | exception Continue_loop -> Option.iter (exec_stmt st) post);
            loop ()
          end
        in
        try loop () with Exit -> ())
  | Tast.Sforrange_map (v, m, body) -> begin
    match eval st m with
    | Value.VMap addr ->
      (* snapshot the keys so mutation during iteration is well-defined *)
      let keys = map_range_keys st addr in
      (try
         List.iter
           (fun key ->
             safepoint st;
             declare_var st (cur_frame st) v (Value.copy key);
             match exec_block st body with
             | () -> ()
             | exception Break_loop -> raise Exit
             | exception Continue_loop -> ())
           keys
       with Exit -> ())
    | Value.VNil -> ()
    | _ -> raise (Runtime_error "range over non-map")
  end
  | Tast.Sreturn es ->
    let vs = List.map (fun e -> Value.copy (eval st e)) es in
    raise (Return_values vs)
  | Tast.Sblock b -> exec_block st b
  | Tast.Sgo (name, args) ->
    let args = List.map (fun a -> Value.copy (eval st a)) args in
    spawn_goroutine st (resolve_func st name) args
  | Tast.Sdefer (name, args) ->
    let args = List.map (fun a -> Value.copy (eval st a)) args in
    let fid = resolve_func st name in
    let f = cur_frame st in
    f.defers <- (fid, args) :: f.defers
  | Tast.Spanic e -> raise (Panic (eval st e))
  | Tast.Sbreak -> raise Break_loop
  | Tast.Scontinue -> raise Continue_loop
  | Tast.Sdelete (m, k) -> begin
    let vm = eval st m in
    let vk = eval st k in
    match vm with
    | Value.VMap addr -> map_delete st addr vk
    | Value.VNil -> ()
    | _ -> raise (Runtime_error "delete on non-map")
  end
  | Tast.Sprint es ->
    let parts = List.map (fun e -> Value.to_string (eval st e)) es in
    emit_str st (String.concat " " parts ^ "\n")
  | Tast.Stcfree (v, kind) ->
    (* tcfree is only inserted for locals; a global here (impossible by
       construction) indexes the wrong slot space, so guard it out *)
    if v.Tast.v_kind <> Tast.Vglobal then begin
      match (cur_frame st).slots.(Layout.slot st.layout v) with
      | Bunbound -> ()  (* declaration never executed on this path *)
      | b -> tcfree_binding st b kind
    end

and resolve_func st name : int =
  match Layout.func_id st.layout name with
  | Some fid -> fid
  | None -> raise (Runtime_error ("undefined function " ^ name))

and spawn_goroutine st fid args =
  match st.par with
  | Some p -> spawn_parallel st p fid args
  | None ->
    let g =
      { g_id = Sched.fresh_gid st.sched; g_frames = []; g_pending = [];
        g_stk_v = [||]; g_top_v = 0; g_stk_i = [||]; g_top_i = 0 }
    in
    st.goroutines <- g :: st.goroutines;
    Sched.spawn st.sched ~gid:g.g_id
      ~on_resume:(fun () -> st.current <- g)
      (fun () ->
        (match st.dispatch st fid args with
        | _ -> ()
        | exception Panic v ->
          Buffer.add_string st.output ("panic: " ^ Value.to_string v ^ "\n");
          raise (Panic v));
        st.goroutines <- List.filter (fun g' -> g' != g) st.goroutines)
