(** Top-level execution of a compiled MiniGo program: sets up the heap,
    scheduler and globals, lowers the program to closures (unless the
    config asks for the reference tree-walker), runs [main] (plus all
    goroutines) to completion, performs the final accounting sweep and
    returns the collected output and metrics. *)

open Minigo
module Rt = Gofree_runtime

type result = {
  output : string;
  metrics : Rt.Metrics.t;
  wall_ns : int64;
  steps : int;
  panicked : bool;
  sampler : Rt.Sampler.t option;
      (** the metrics time series, when [sample_every > 0] asked for one *)
}

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(** Run an instrumented program against explicit static decisions — the
    entry point for linked multi-package builds, whose decisions come
    from per-package caches rather than one whole-program analysis. *)
let run_program ?(config = Interp.default_config)
    ~(decisions : Decisions.t) (program : Tast.program) : result =
  let nd = config.Interp.domains in
  (* [--domains N>1] widens the allocator to one mcache/metric stripe per
     domain and turns its internal locking on; [--domains 1] keeps the
     sequential single-writer heap so the byte-identity gate compares
     like with like. *)
  let heap =
    Rt.Heap.create ~config:config.Interp.heap_config
      ~nprocs:(if nd > 1 then nd else config.Interp.nprocs)
      ~shared:(nd > 1) ()
  in
  let sched =
    Sched.create ~nprocs:config.Interp.nprocs
      ~migrate_every:config.Interp.migrate_every
  in
  let layout = Layout.of_program program in
  let main_g =
    { Interp.g_id = 0; g_frames = []; g_pending = [];
      g_stk_v = [||]; g_top_v = 0; g_stk_i = [||]; g_top_i = 0 }
  in
  let par =
    if nd >= 1 then
      Some
        (Interp.make_parctx ~nd ~seed:config.Interp.seed
           ~yield_every:config.Interp.yield_every)
    else None
  in
  let st =
    {
      Interp.program;
      decisions;
      layout;
      heap;
      sched;
      output = Buffer.create 256;
      globals = Array.make (max 1 layout.Layout.l_nglobals) Interp.Bunbound;
      config;
      dispatch = Interp.call_by_id;
      goroutines = [ main_g ];
      current = main_g;
      steps = 0;
      rng = config.Interp.seed;
      next_scope_token = 0;
      unwinding = None;
      ic_hits = 0;
      ic_misses = 0;
      yield_at = config.Interp.yield_every;
      dom = 0;
      par;
    }
  in
  (* Lower once, before anything executes, so even the global
     initializers' calls run compiled bodies. *)
  (match config.Interp.engine with
  | Interp.Eng_reference -> ()  (* the default dispatch, call_by_id *)
  | Interp.Eng_closure ->
    Compile.install st (Compile.lower program decisions layout)
  | Interp.Eng_bytecode ->
    Vm.install st (Emit.lower program decisions layout));
  heap.Rt.Heap.trace_payload <- Value.trace_payload;
  heap.Rt.Heap.poison_payload <- Value.poison_payload;
  (match par with
  | Some p ->
    heap.Rt.Heap.iter_roots <-
      (fun k -> Interp.iter_roots_par p ~globals:st.Interp.globals k)
  | None -> heap.Rt.Heap.iter_roots <- (fun k -> Interp.iter_roots st k));
  if config.Interp.sample_every > 0 then
    heap.Rt.Heap.sampler <-
      Some (Rt.Sampler.create ~every:config.Interp.sample_every ());
  let panicked = ref false in
  let t0 = now_ns () in
  (* Globals are evaluated in a synthetic frame of main's goroutine. *)
  let boot () =
    let boot_frame =
      {
        Interp.fn =
          (match Layout.func_id layout "main" with
          | Some fid -> layout.Layout.l_funcs.(fid)
          | None -> raise (Interp.Runtime_error "no main function"));
        slots = [||];  (* initializers only reference globals *)
        defers = [];
        stack_objs = [];
        lazy_scopes = 0;
        temps = [];
        gid = 0;
      }
    in
    main_g.Interp.g_frames <- [ boot_frame ];
    List.iter
      (fun ((v : Tast.var), init) ->
        let value =
          match init with
          | Some e -> Value.copy (Interp.eval st e)
          | None -> Value.zero program.Tast.p_tenv v.Tast.v_ty
        in
        st.Interp.globals.(Layout.slot layout v) <-
          Interp.Bdirect (Value.cell value))
      program.Tast.p_globals;
    main_g.Interp.g_frames <- [];
    match Interp.call_function st "main" [] with
    | _ -> ()
    | exception Interp.Panic v ->
      Buffer.add_string st.Interp.output
        ("panic: " ^ Value.to_string v ^ "\n");
      panicked := true
  in
  (match
     match par with
     | Some p -> Par.run p st boot
     | None ->
       Sched.run sched ~on_resume:(fun () -> st.Interp.current <- main_g)
         boot
   with
  | () -> ()
  | exception Interp.Panic v ->
    (* a goroutine's unrecovered panic aborts the program, like Go *)
    Buffer.add_string st.Interp.output
      ("panic: " ^ Value.to_string v ^ "\n");
    panicked := true);
  let t1 = now_ns () in
  (* In parallel mode each goroutine ran on its own state copy; finished
     goroutines folded their counters into the context, any survivors of
     an aborted run are still registered. *)
  let total_steps, total_ic_hits, total_ic_misses =
    match par with
    | None -> (st.Interp.steps, st.Interp.ic_hits, st.Interp.ic_misses)
    | Some p ->
      List.fold_left
        (fun (s, h, m) ((_ : Interp.goroutine), (gst : Interp.state)) ->
          (s + gst.Interp.steps, h + gst.Interp.ic_hits,
           m + gst.Interp.ic_misses))
        (p.Interp.p_steps_done, p.Interp.p_ic_hits, p.Interp.p_ic_misses)
        p.Interp.p_regs
  in
  (* Final accounting sweep: everything still live is attributed to GC
     reclamation for the Table 8 denominators, without counting an extra
     cycle.  All domains have been joined by now, so even a shared heap
     is quiescent; its sweep must still go through the parallel
     collector, whose apply path maintains the atomic live count. *)
  st.Interp.goroutines <- [];
  (match par with Some p -> p.Interp.p_regs <- [] | None -> ());
  heap.Rt.Heap.iter_roots <- (fun _ -> ());
  let saved_cycles = heap.Rt.Heap.metrics.Rt.Metrics.gc_cycles in
  let saved_time = heap.Rt.Heap.metrics.Rt.Metrics.gc_time_ns in
  if heap.Rt.Heap.shared then
    Rt.Gc_collector.Par.run_leader (Rt.Gc_collector.Par.start heap)
  else Rt.Gc_collector.collect heap;
  heap.Rt.Heap.metrics.Rt.Metrics.gc_cycles <- saved_cycles;
  heap.Rt.Heap.metrics.Rt.Metrics.gc_time_ns <- saved_time;
  heap.Rt.Heap.metrics.Rt.Metrics.max_heap_pages <-
    Rt.Pageheap.max_used_bytes heap.Rt.Heap.pages;
  (* Publish the VM's inline-cache counters to the process-global
     telemetry registry (gofree-telemetry-v1) when one is live; a plain
     field read keeps the disabled path free. *)
  (let module Reg = Gofree_obs.Registry in
   if Reg.runtime_enabled () then begin
     if total_ic_hits + total_ic_misses > 0 then begin
       Reg.add
         (Reg.counter Reg.runtime
            ~help:"bytecode-engine inline cache hits (map-key + struct-field)"
            "gofree_vm_ic_hit_total")
         total_ic_hits;
       Reg.add
         (Reg.counter Reg.runtime
            ~help:
              "bytecode-engine inline cache misses (map-key + struct-field)"
            "gofree_vm_ic_miss_total")
         total_ic_misses
     end;
     match par with
     | Some p ->
       Reg.add
         (Reg.counter Reg.runtime
            ~help:"goroutines migrated between domains by work stealing"
            "gofree_sched_steals_total")
         p.Interp.p_steals;
       Reg.add
         (Reg.counter Reg.runtime
            ~help:"goroutines spawned onto the domain scheduler"
            "gofree_sched_spawns_total")
         p.Interp.p_spawns;
       Reg.add
         (Reg.counter Reg.runtime
            ~help:"goroutine yields on the domain scheduler"
            "gofree_sched_yields_total")
         p.Interp.p_yields
     | None -> ()
   end);
  {
    output = Buffer.contents st.Interp.output;
    metrics = Rt.Heap.merged_metrics heap;
    wall_ns = Int64.sub t1 t0;
    steps = total_steps;
    panicked = !panicked;
    sampler = heap.Rt.Heap.sampler;
  }

(** Run a compiled program.  Raises {!Value.Corruption} if poison mode
    detects a wrong explicit free, and {!Interp.Runtime_error} on
    interpreter-level failures. *)
let run ?(config = Interp.default_config)
    (compiled : Gofree_core.Pipeline.compiled) : result =
  let program = compiled.Gofree_core.Pipeline.c_program in
  let decisions =
    Decisions.of_analysis compiled.Gofree_core.Pipeline.c_analysis program
  in
  run_program ~config ~decisions program

(** Convenience: compile under [gofree_config] and run.  The runtime's
    map-growth freeing follows the compile-time setting unless the caller
    supplies an explicit [run_config]. *)
let compile_and_run ?(gofree_config = Gofree_core.Config.gofree)
    ?run_config (source : string) : result =
  let compiled = Gofree_core.Pipeline.compile ~config:gofree_config source in
  let config =
    match run_config with
    | Some c -> c
    | None ->
      {
        Interp.default_config with
        heap_config =
          {
            Rt.Heap.default_config with
            grow_map_free_old = gofree_config.Gofree_core.Config.insert_tcfree;
          };
      }
  in
  run ~config compiled
