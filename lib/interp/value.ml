(** Runtime values of MiniGo and their payload representation inside the
    simulated heap.

    All mutable storage is a {!cell}; a pointer is an (owner address,
    cell) pair so the GC can keep the owning heap object alive while the
    interpreter mutates through the cell directly.  Struct values are cell
    arrays copied on assignment (Go value semantics); slice values are
    headers (backing-array address + cells + length) copied freely while
    sharing the backing store.

    Strings are modelled as static immutable data (no heap object): GoFree
    never frees strings, and the paper's reclaim comes from slices and
    maps, so this keeps the value model small without changing any
    measured behaviour (recorded as a substitution in DESIGN.md). *)

type cell = { mutable v : value }

and value =
  | VUnit
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VNil
  | VPtr of ptr
  | VSlice of slice
  | VMap of int  (** address of the map header object *)
  | VStruct of cell array
  | VTuple of value list
  | VPoison  (** contents of mock-freed memory (§6.8) *)

and ptr = {
  p_owner : int;  (** heap/stack object owning the cell; 0 = frame slot *)
  p_cell : cell;
}

and slice = {
  s_addr : int;  (** backing-array object *)
  s_cells : cell array;  (** the shared backing array *)
  s_off : int;  (** view offset into the backing array *)
  s_len : int;  (** view length; capacity = Array.length s_cells − s_off *)
}

type map_data = {
  mutable md_buckets : int;  (** address of the buckets object *)
  mutable md_nbuckets : int;
  mutable md_count : int;
  md_entry_size : int;  (** key + value bytes, from the allocation site *)
  mutable md_version : int;
      (** bumped on every store/delete/grow/free — the shape check that
          invalidates the bytecode engine's map-site inline caches.
          Purely an interpreter-side fast-path guard: no allocator or GC
          behaviour reads it *)
}

(** Heap payloads carrying interpreter values. *)
type Gofree_runtime.Heap.payload +=
  | Pcells of cell array  (** slice backing array, or a 1-cell box *)
  | Pmap of map_data
  | Pbuckets of (value * value) list array

exception Corruption of string
    (** read of poisoned memory: a wrong explicit free was observed *)

let cell v = { v }

(* Shared boxes for small ints.  [VInt] is immutable and compared
   structurally everywhere (maps, ==, caches), so one box can appear in
   any number of cells; loop counters and small lengths dominate cell
   stores, and reusing their boxes keeps those stores off the OCaml
   allocator. *)
let small_ints = Array.init 1024 (fun i -> VInt i)

let vint n =
  if n >= 0 && n < 1024 then Array.unsafe_get small_ints n else VInt n

let read_cell c =
  match c.v with
  | VPoison -> raise (Corruption "read of freed memory")
  | v -> v

(** Deep-copy for assignment: struct values copy their cells; everything
    else has reference or immutable semantics. *)
let rec copy = function
  | VStruct cells -> VStruct (Array.map (fun c -> cell (copy c.v)) cells)
  | ( VUnit | VInt _ | VFloat _ | VBool _ | VStr _ | VNil | VPtr _
    | VSlice _ | VMap _ | VTuple _ | VPoison ) as v ->
    v

(** Zero value of a type (Go semantics). *)
let rec zero (tenv : Minigo.Types.env) (ty : Minigo.Types.t) : value =
  match ty with
  | Minigo.Types.Int -> VInt 0
  | Minigo.Types.Float -> VFloat 0.0
  | Minigo.Types.Bool -> VBool false
  | Minigo.Types.String -> VStr ""
  | Minigo.Types.Ptr _ | Minigo.Types.Slice _ | Minigo.Types.Map _ -> VNil
  | Minigo.Types.Struct name ->
    VStruct
      (Array.of_list
         (List.map
            (fun (_, fty) -> cell (zero tenv fty))
            (Minigo.Types.struct_fields tenv name)))
  | Minigo.Types.Tuple _ | Minigo.Types.Unit | Minigo.Types.Nil -> VUnit

(** Enumerate the heap addresses a value references (GC tracing). *)
let rec trace (v : value) (k : int -> unit) =
  match v with
  | VStr _ | VUnit | VInt _ | VFloat _ | VBool _ | VNil | VPoison -> ()
  | VPtr p -> if p.p_owner > 0 then k p.p_owner
    (* owner 0: pointer to a frame slot; the frame is scanned as a root *)
  | VSlice s -> if s.s_addr > 0 then k s.s_addr
  | VMap addr -> if addr > 0 then k addr
  | VStruct cells -> Array.iter (fun c -> trace c.v k) cells
  | VTuple vs -> List.iter (fun v -> trace v k) vs

(** Payload tracer registered with the heap. *)
let trace_payload (p : Gofree_runtime.Heap.payload) (k : int -> unit) =
  match p with
  | Pcells cells -> Array.iter (fun c -> trace c.v k) cells
  | Pmap md -> if md.md_buckets > 0 then k md.md_buckets
  | Pbuckets buckets ->
    Array.iter
      (fun entries ->
        List.iter
          (fun (key, v) ->
            trace key k;
            trace v k)
          entries)
      buckets
  | _ -> ()

(** Poison-mode payload corruption (§6.8's bit-flipping mock, made
    deterministic): every cell the payload owns becomes [VPoison], so any
    read through a stale reference raises {!Corruption} instead of
    silently yielding the old data. *)
let poison_payload (p : Gofree_runtime.Heap.payload) =
  match p with
  | Pcells cells -> Array.iter (fun c -> c.v <- VPoison) cells
  | Pbuckets buckets ->
    Array.iteri (fun i _ -> buckets.(i) <- [ (VPoison, VPoison) ]) buckets
  | Pmap md ->
    md.md_buckets <- -1;
    md.md_count <- -1;
    md.md_version <- md.md_version + 1
  | _ -> ()

(* Structural equality for map keys and '=='. *)
let equal_key a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VStr x, VStr y -> String.equal x y
  | VBool x, VBool y -> x = y
  | VFloat x, VFloat y -> x = y
  | _ -> false

let hash_key = function
  | VInt n -> Hashtbl.hash n
  | VStr s -> Hashtbl.hash s
  | VBool b -> Hashtbl.hash b
  | VFloat f -> Hashtbl.hash f
  | _ -> 0

(** Deterministic textual form for println (pointer addresses are hidden
    so output is identical across Go/GoFree settings). *)
let rec to_string = function
  | VUnit -> "()"
  | VInt n -> string_of_int n
  | VFloat f -> Printf.sprintf "%g" f
  | VBool b -> string_of_bool b
  | VStr s -> s
  | VNil -> "<nil>"
  | VPtr _ -> "<ptr>"
  | VSlice s ->
    let elems =
      List.init s.s_len (fun i ->
          to_string (read_cell s.s_cells.(s.s_off + i)))
    in
    "[" ^ String.concat " " elems ^ "]"
  | VMap _ -> "map"
  | VStruct cells ->
    let fields =
      Array.to_list
        (Array.map (fun c -> to_string (read_cell c)) cells)
    in
    "{" ^ String.concat " " fields ^ "}"
  | VTuple vs -> String.concat ", " (List.map to_string vs)
  | VPoison -> raise (Corruption "print of freed memory")
