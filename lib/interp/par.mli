(** Work-stealing multi-domain goroutine scheduler ([--domains N]).
    Domain 0 runs inline on the caller; domains 1..N-1 are spawned for
    the run and joined before {!run} returns.  At N = 1 the single FIFO
    queue replays the sequential scheduler's order exactly. *)

(** Run the boot closure and every goroutine it spawns to completion.
    The state is main's state copy (already holding the parallel
    context).  Re-raises the first exception that escaped a
    goroutine. *)
val run : Interp.parctx -> Interp.state -> (unit -> unit) -> unit
