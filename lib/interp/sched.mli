(** Cooperative goroutine scheduler on OCaml 5 effect handlers.

    The interpreter performs {!Yield} at regular step intervals; the
    scheduler round-robins a run queue of fibers.  Goroutines are pinned
    to logical processors with occasional migration, exercising the
    mspan-ownership give-up path of the paper's tcfree (§5). *)

type _ Effect.t += Yield : unit Effect.t

type t = {
  runq : (unit -> unit) Queue.t;
  mutable next_gid : int;
  nprocs : int;
  migrate_every : int;
  mutable yields : int;
}

val create : nprocs:int -> migrate_every:int -> t

(** Suspend the current fiber; it re-enters the run queue. *)
val yield : unit -> unit

(** Run [main] and every fiber it spawns, to completion.  [on_resume]
    fires before the main body and before each of its resumptions.
    Exceptions escape (a MiniGo panic aborts the program, like Go). *)
val run : t -> ?on_resume:(unit -> unit) -> (unit -> unit) -> unit

(** Enqueue a new fiber.  [gid] labels its run slices in a captured
    trace (one Perfetto track per goroutine). *)
val spawn :
  t -> ?gid:int -> ?on_resume:(unit -> unit) -> (unit -> unit) -> unit

val fresh_gid : t -> int

(** The logical processor a goroutine currently uses: its base
    assignment plus a slow round-robin drift with the global yield
    count. *)
val pid_for : t -> gid:int -> int
