(** Cooperative goroutine scheduler on OCaml 5 effect handlers.

    Every goroutine is a fiber; the interpreter performs {!Yield} at
    regular step intervals and the scheduler round-robins the run queue.
    Each goroutine is pinned to a logical processor (P) whose mcache it
    allocates from; periodic migration between Ps reproduces the
    "mspan ownership changed" give-up path of the paper's tcfree (§5). *)

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type t = {
  runq : (unit -> unit) Queue.t;
  mutable next_gid : int;
  nprocs : int;
  migrate_every : int;  (** yield count between simulated P migrations *)
  mutable yields : int;
}

let create ~nprocs ~migrate_every =
  { runq = Queue.create (); next_gid = 0; nprocs; migrate_every; yields = 0 }

let yield () = perform Yield

module Trace = Gofree_obs.Trace

(** Wrap [body] as a fiber whose [Yield]s re-enqueue it.  [on_resume] runs
    before the body starts and before every resumption — the interpreter
    uses it to reinstall the goroutine as the current one.  [gid] labels
    the fiber's run slices in a captured trace (one Perfetto track per
    goroutine: a span opens at every resumption and closes at the next
    yield or at completion). *)
let rec run_task (t : t) ?(gid = 0) ~(on_resume : unit -> unit)
    (body : unit -> unit) : unit =
  let tid = Trace.tid_fiber gid in
  let slice_name = "run g" ^ string_of_int gid in
  let slice_begin () =
    if Trace.enabled () then Trace.begin_span ~tid slice_name
  in
  let slice_end () =
    if Trace.enabled () then Trace.end_span ~tid slice_name
  in
  if Trace.enabled () then
    Trace.name_thread ~tid ("goroutine " ^ string_of_int gid);
  match_with
    (fun () ->
      on_resume ();
      slice_begin ();
      body ())
    ()
    {
      retc = (fun () -> slice_end ());
      exnc =
        (fun e ->
          slice_end ();
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                slice_end ();
                t.yields <- t.yields + 1;
                Queue.add
                  (fun () ->
                    on_resume ();
                    slice_begin ();
                    continue k ())
                  t.runq)
          | _ -> None);
    }

and drain (t : t) =
  match Queue.take_opt t.runq with
  | None -> ()
  | Some task ->
    task ();
    drain t

(** Run [main] plus every goroutine it spawns, to completion.  Exceptions
    escape (a MiniGo panic aborts the whole program, like Go). *)
let run (t : t) ?(on_resume = fun () -> ()) (main : unit -> unit) =
  run_task t ~gid:0 ~on_resume main;
  drain t

let spawn (t : t) ?(gid = 0) ?(on_resume = fun () -> ())
    (body : unit -> unit) =
  t.next_gid <- t.next_gid + 1;
  Queue.add (fun () -> run_task t ~gid ~on_resume body) t.runq

let fresh_gid (t : t) =
  t.next_gid <- t.next_gid + 1;
  t.next_gid

(** The P a goroutine should currently use: base assignment plus a slow
    round-robin drift with the global yield count, so long-running
    goroutines occasionally change mcache. *)
let pid_for (t : t) ~gid =
  let drift =
    if t.migrate_every <= 0 then 0 else t.yields / t.migrate_every
  in
  (gid + drift) mod t.nprocs
