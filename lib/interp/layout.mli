(** Static layout of a program for the slot-resolved interpreter:
    variable ids → dense frame/global slots, function names → interned
    integer ids.  Computed once per run; shared by the reference
    tree-walker and the closure compiler. *)

open Minigo

type t = {
  l_funcs : Tast.func array;  (** function bodies, by interned id *)
  l_func_ids : (string, int) Hashtbl.t;
      (** name → id; duplicates keep the last definition *)
  l_nslots : int array;  (** frame slots needed, by function id *)
  l_slots : int array;
      (** variable id → frame slot (locals) or global slot (globals);
          [-1] for ids never mentioned by the program *)
  l_nglobals : int;
}

val of_program : Tast.program -> t

(** Interned id of a function name, if defined. *)
val func_id : t -> string -> int option

(** The resolved slot of a variable (frame slot for locals/params,
    global slot for globals). *)
val slot : t -> Tast.var -> int
