(** Top-level execution of a compiled MiniGo program against the
    simulated GoFree runtime. *)

module Rt = Gofree_runtime

type result = {
  output : string;  (** everything [println] produced *)
  metrics : Rt.Metrics.t;
  wall_ns : int64;
  steps : int;
  panicked : bool;
  sampler : Rt.Sampler.t option;
      (** the metrics time series, when
          [run_config.sample_every > 0] asked for one *)
}

(** Run a compiled program to completion (main plus all goroutines), then
    perform the final accounting sweep.  Raises
    {!Gofree_interp.Value.Corruption} when poison mode detects a wrong
    free. *)
val run : ?config:Interp.run_config -> Gofree_core.Pipeline.compiled -> result

(** Run an instrumented program against explicit static decisions — the
    entry point for linked multi-package builds, whose decisions come
    from per-package summary caches rather than one whole-program
    analysis. *)
val run_program :
  ?config:Interp.run_config ->
  decisions:Decisions.t ->
  Minigo.Tast.program ->
  result

(** Compile under [gofree_config] and run; the runtime's map-growth
    freeing follows the compile-time setting unless [run_config] is
    given. *)
val compile_and_run :
  ?gofree_config:Gofree_core.Config.t ->
  ?run_config:Interp.run_config ->
  string ->
  result
