(** The multi-domain goroutine scheduler: N worker loops (one per OCaml
    domain, domain 0 inline on the caller), each draining its own run
    queue and stealing half a victim's queue when empty.

    Scheduling protocol:
    - a task is one goroutine slice — it runs until the goroutine yields
      (the fiber re-enqueues itself on the executing domain's queue),
      finishes, or parks for a stop-the-world GC handshake;
    - [p_running] counts domains currently inside a slice; it is what
      the GC leader waits on, so a worker must never block while
      counted;
    - idle workers sleep on [p_work] and are woken by spawns, yields,
      steals becoming possible (any completion broadcasts) and GC phase
      transitions.  During a handshake they help mark/sweep rather than
      sleep.

    At [--domains 1] no domain is spawned, nothing can be stolen, and
    the single FIFO queue replays the sequential scheduler's order
    exactly — that is the byte-identity gate's mechanism, not a tuned
    coincidence. *)

module Rt = Gofree_runtime
module Wsq = Gofree_sched.Wsq

(* Pop local work, stealing half of the first non-empty victim queue
   (round-robin from d+1) when the local queue is dry.  Caller holds
   [p_mutex]; queue locks nest inside it. *)
let take_task (p : Interp.parctx) d =
  match Wsq.pop p.Interp.p_queues.(d) with
  | Some _ as t -> t
  | None ->
    if p.Interp.p_nd <= 1 then None
    else begin
      let nd = p.Interp.p_nd in
      let moved = ref 0 in
      let v = ref ((d + 1) mod nd) in
      while !moved = 0 && !v <> d do
        moved :=
          Wsq.steal_half ~victim:p.Interp.p_queues.(!v)
            ~into:p.Interp.p_queues.(d);
        if !moved = 0 then v := (!v + 1) mod nd
      done;
      if !moved > 0 then
        p.Interp.p_steals <- p.Interp.p_steals + !moved;
      Wsq.pop p.Interp.p_queues.(d)
    end

(* Execute one slice of [task] on domain [d].  Returns the escaping
   exception, if any.  At nd = 1 the sequential scheduler's shared slice
   budget is replayed: the state copy's yield threshold is loaded from
   the global budget before the slice, and a completion mid-slice hands
   its leftover steps to the next task (a yield refills the budget). *)
let run_slice (p : Interp.parctx) (task : Interp.ptask) d =
  let gst = task.Interp.tk_st in
  gst.Interp.dom <- d;
  if p.Interp.p_nd = 1 then begin
    let steps0 = gst.Interp.steps and yields0 = p.Interp.p_yields in
    gst.Interp.yield_at <- gst.Interp.steps + p.Interp.p_budget;
    let r =
      match task.Interp.tk_run () with () -> None | exception e -> Some e
    in
    if p.Interp.p_yields > yields0 then
      p.Interp.p_budget <- gst.Interp.config.Interp.yield_every
    else
      p.Interp.p_budget <-
        max 1 (p.Interp.p_budget - (gst.Interp.steps - steps0));
    r
  end
  else
    match task.Interp.tk_run () with () -> None | exception e -> Some e

(* Park for an in-progress stop-the-world handshake: wait for the
   leader to publish the cycle, help mark/sweep, wait for release.
   Unlike a safepoint responder this domain is idle, so it is not
   counted in [p_running].  Caller holds [p_mutex]. *)
let park_for_gc (p : Interp.parctx) =
  while p.Interp.p_gc_active && p.Interp.p_gc_cycle = None do
    Condition.wait p.Interp.p_work p.Interp.p_mutex
  done;
  (match p.Interp.p_gc_cycle with
  | Some c when p.Interp.p_gc_active ->
    Mutex.unlock p.Interp.p_mutex;
    Rt.Gc_collector.Par.run_helper c;
    Mutex.lock p.Interp.p_mutex
  | _ -> ());
  while p.Interp.p_gc_active do
    Condition.wait p.Interp.p_work p.Interp.p_mutex
  done

let worker_loop (p : Interp.parctx) d =
  Domain.DLS.set p.Interp.p_dls d;
  Mutex.lock p.Interp.p_mutex;
  let quit = ref false in
  while not !quit do
    if p.Interp.p_live = 0 || p.Interp.p_abort <> None then begin
      quit := true;
      (* every other worker must also notice and exit *)
      Condition.broadcast p.Interp.p_work
    end
    else if p.Interp.p_gc_active then park_for_gc p
    else begin
      match take_task p d with
      | Some task ->
        p.Interp.p_running <- p.Interp.p_running + 1;
        Mutex.unlock p.Interp.p_mutex;
        let err = run_slice p task d in
        Mutex.lock p.Interp.p_mutex;
        p.Interp.p_running <- p.Interp.p_running - 1;
        (match err with
        | Some e when p.Interp.p_abort = None -> p.Interp.p_abort <- Some e
        | _ -> ());
        Condition.broadcast p.Interp.p_work
      | None -> Condition.wait p.Interp.p_work p.Interp.p_mutex
    end
  done;
  Mutex.unlock p.Interp.p_mutex

(** Run [main] (the boot closure: global initializers + [main()]) and
    every goroutine it transitively spawns to completion across
    [p.p_nd] domains.  [st] is main's state copy.  Re-raises the first
    exception that escaped a goroutine, after all domains have
    parked. *)
let run (p : Interp.parctx) (st : Interp.state) (main : unit -> unit) =
  p.Interp.p_regs <- [ (st.Interp.current, st) ];
  p.Interp.p_live <- 1;
  Wsq.push p.Interp.p_queues.(0) (Interp.fiber_task p st main);
  let workers =
    Array.init
      (p.Interp.p_nd - 1)
      (fun i -> Domain.spawn (fun () -> worker_loop p (i + 1)))
  in
  worker_loop p 0;
  Array.iter Domain.join workers;
  match p.Interp.p_abort with Some e -> raise e | None -> ()
