(** Span/instant event tracer emitting Chrome/Perfetto trace-event JSON.

    Implementation notes:

    - the singleton is an [Atomic.t] so worker domains read a coherent
      enabled/disabled state without locking on the fast path;
    - events are serialized immediately into one shared [Buffer] under a
      mutex — nothing is retained per event, so long runs cost memory
      proportional to the serialized output only;
    - timestamps come from [Unix.gettimeofday] relative to [start], in
      microseconds (the unit the trace-event format specifies), clamped
      monotone in emission order so consumers that sort-merge tracks never
      see time run backwards. *)

type state = {
  buf : Buffer.t;
  mutex : Mutex.t;
  t0 : float;
  mutable last_ts : float;
  mutable count : int;
}

let current : state option Atomic.t = Atomic.make None

let enabled () = Atomic.get current <> None

let start () =
  Atomic.set current
    (Some
       {
         buf = Buffer.create 65536;
         mutex = Mutex.create ();
         t0 = Unix.gettimeofday ();
         last_ts = 0.0;
         count = 0;
       })

let pid = 1

(* Track conventions (see the .mli). *)
let tid_main = 0

let tid_runtime = 1

let tid_worker i = 10 + i

let tid_fiber gid = 100 + gid

let tid_reader conn = 1000 + conn

let domain_tid_key : int Domain.DLS.key =
  Domain.DLS.new_key (fun () -> tid_main)

let domain_tid () = Domain.DLS.get domain_tid_key

let set_domain_tid tid = Domain.DLS.set domain_tid_key tid

(* Request correlation: a per-domain ambient request id.  While set,
   every event the domain emits (GC spans, pipeline phases, tcfree
   instants — anything except "M" metadata) gains an {b args.req} field,
   so one request's whole lifecycle can be filtered out of a trace.
   Per-domain, not per-thread: only set it from contexts that own their
   domain for the request's duration (the daemon's worker domains);
   systhreads sharing a domain must pass [("req", ...)] explicitly. *)
let request_id_key : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let request_id () = Domain.DLS.get request_id_key

let with_request_id rid f =
  let prev = Domain.DLS.get request_id_key in
  Domain.DLS.set request_id_key rid;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set request_id_key prev)
    f

(* Serialize one event under the state's mutex.  [ph] is the trace-event
   phase letter; [extra] appends pre-rendered JSON fields. *)
let emit ?(args = []) ~tid ~ph name =
  match Atomic.get current with
  | None -> ()
  | Some st ->
    let args =
      if ph = "M" then args
      else begin
        match Domain.DLS.get request_id_key with
        | Some rid when not (List.mem_assoc "req" args) ->
          ("req", Json.Int rid) :: args
        | _ -> args
      end
    in
    Mutex.lock st.mutex;
    let ts =
      let raw = (Unix.gettimeofday () -. st.t0) *. 1e6 in
      let ts = if raw < st.last_ts then st.last_ts else raw in
      st.last_ts <- ts;
      ts
    in
    if st.count > 0 then Buffer.add_string st.buf ",\n";
    st.count <- st.count + 1;
    let fields =
      [
        ("name", Json.Str name);
        ("cat", Json.Str "gofree");
        ("ph", Json.Str ph);
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
      ]
      @ (if ph = "i" then [ ("s", Json.Str "t") ] else [])
      @ (if args = [] then [] else [ ("args", Json.Obj args) ])
    in
    Json.to_buffer st.buf (Json.Obj fields);
    Mutex.unlock st.mutex

let stop () =
  match Atomic.get current with
  | None -> "{}"
  | Some st ->
    Atomic.set current None;
    Mutex.lock st.mutex;
    let body = Buffer.contents st.buf in
    Mutex.unlock st.mutex;
    Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
      body

let stop_to_file path =
  let doc = stop () in
  let oc = open_out path in
  output_string oc doc;
  close_out oc

let name_thread ~tid name =
  emit ~args:[ ("name", Json.Str name) ] ~tid ~ph:"M" "thread_name"

let begin_span ?args ~tid name = emit ?args ~tid ~ph:"B" name

let end_span ~tid name = emit ~tid ~ph:"E" name

let instant ?args ~tid name = emit ?args ~tid ~ph:"i" name

let counter ~tid name values =
  emit
    ~args:(List.map (fun (k, v) -> (k, Json.Float v)) values)
    ~tid ~ph:"C" name

let with_span ?args ~tid name f =
  if not (enabled ()) then f ()
  else begin
    begin_span ?args ~tid name;
    match f () with
    | v ->
      end_span ~tid name;
      v
    | exception e ->
      end_span ~tid name;
      raise e
  end
