(** Span/instant event tracer emitting Chrome/Perfetto trace-event JSON
    (the [trace_event] format: one `B`/`E` pair per span, `i` instants,
    `C` counters, `M` metadata).  Load the output at https://ui.perfetto.dev
    or chrome://tracing.

    The tracer is a process-wide singleton so every layer — compiler
    pipeline, build driver (including its worker domains), runtime and
    interpreter — writes into one stream.  When disabled (the default),
    every emit function is a single atomic load and branch: no allocation,
    no formatting.  Hot call sites that build argument lists should still
    guard with {!enabled} so the arguments are only constructed when a
    trace is being captured.

    Emission is serialized by a mutex, so worker domains can trace
    concurrently; timestamps are clamped monotone in emission order. *)

(** {1 Lifecycle} *)

val enabled : unit -> bool

(** Start capturing into a fresh in-memory buffer. *)
val start : unit -> unit

(** Stop capturing and return the complete JSON document
    ([{"traceEvents": [...]}]).  Returns ["{}"] if tracing was off. *)
val stop : unit -> string

(** Stop capturing and write the JSON document to [path]. *)
val stop_to_file : string -> unit

(** {1 Track conventions}

    [tid] selects the Perfetto track an event lands on.  The layers agree
    on the following assignment; [name_thread] attaches human-readable
    labels. *)

(** Track 0: the main thread — pipeline phases, build orchestration. *)
val tid_main : int

(** Track 1: the simulated runtime — GC cycles and tcfree activity. *)
val tid_runtime : int

(** Track of build worker domain [i] (10 + i). *)
val tid_worker : int -> int

(** Track of goroutine/fiber [gid] (100 + gid). *)
val tid_fiber : int -> int

(** Track of the daemon's reader thread for connection [conn]
    (1000 + conn) — request receive/queue/respond events. *)
val tid_reader : int -> int

(** The current domain's default track: {!tid_main} unless
    {!set_domain_tid} was called on this domain (the build driver pins
    each worker domain to its own track, so pipeline spans emitted inside
    a worker land on the worker's track). *)
val domain_tid : unit -> int

val set_domain_tid : int -> unit

(** {1 Request correlation}

    While a request id is set on a domain, every event that domain emits
    (except "M" metadata) carries [args.req = id] — the daemon's worker
    domains wrap request execution in {!with_request_id} so pipeline,
    GC and tcfree spans nested under a request are attributable to it.
    The id is per-{e domain}: systhreads that share a domain (the
    daemon's reader threads) must pass [("req", ...)] in [?args]
    explicitly instead.  An explicit ["req"] arg always wins. *)

val request_id : unit -> int option

val with_request_id : int option -> (unit -> 'a) -> 'a

(** {1 Emission} *)

val name_thread : tid:int -> string -> unit

(** Begin a duration span on [tid]. *)
val begin_span : ?args:(string * Json.t) list -> tid:int -> string -> unit

(** End the innermost open span named [name] on [tid]. *)
val end_span : tid:int -> string -> unit

(** Thread-scoped instant event. *)
val instant : ?args:(string * Json.t) list -> tid:int -> string -> unit

(** Counter track sample (rendered as a stacked area chart). *)
val counter : tid:int -> string -> (string * float) list -> unit

(** [with_span ~tid name f] wraps [f] in a span, ending it on exceptions
    too. *)
val with_span : ?args:(string * Json.t) list -> tid:int -> string ->
  (unit -> 'a) -> 'a
