(** Registry of the JSON document schemas this codebase emits.

    One tag per machine-readable document family; producers stamp
    documents with {!field}, consumers gate parsing on {!check}. *)

type t =
  | Metrics  (** runtime counters, [Gofree_runtime.Metrics.to_json] *)
  | Samples  (** sampler time series, [Gofree_runtime.Sampler.to_json] *)
  | Build_stats  (** build driver waves/cache, [Driver.stats_to_json] *)
  | Explain  (** freeing diagnostics, [Report.explain_to_json] *)
  | Bench  (** the BENCH_gofree.json evaluation export *)
  | Rpc  (** the [gofreec serve] wire protocol *)
  | Load  (** the [gofreec load] harness report *)
  | Telemetry  (** metrics-registry snapshots, [Registry.Snapshot.to_json] *)
  | Precision  (** the precision-mode smoke export, [precision_smoke.json] *)

val all : t list

(** The wire tag, e.g. [gofree-metrics-v1]. *)
val tag : t -> string

(** Older tags of the same family still accepted by {!check} (e.g. the
    RPC daemon decodes [gofree-rpc-v1] envelopes); producers always
    stamp the current {!tag}. *)
val legacy_tags : t -> string list

val of_tag : string -> t option

(** The [("schema", ...)] field a document of kind [t] must carry. *)
val field : t -> string * Json.t

(** Check that [j] is an object declaring schema [t]; [Error] carries a
    clear mismatch diagnosis (missing/mistyped field, wrong family, or
    unknown — possibly future — version). *)
val check : t -> Json.t -> (unit, string) result

(** [check] raising {!Json.Parse_error}. *)
val check_exn : t -> Json.t -> unit
