(** Typed metrics registry (see the .mli for the model).

    Striping: every counter (and histogram bucket array) is an array of
    [stripes] atomics; a writer picks the stripe of its domain id so
    domains running in parallel do not bounce one cache line.  Readers
    ([snapshot]) sum the stripes — values are eventually consistent
    while writers are active, exact once they stop. *)

let stripes = 8  (* power of two; stripe = domain id land (stripes-1) *)

let stripe_index () = (Domain.self () :> int) land (stripes - 1)

type counter = int Atomic.t array

type gauge = float Atomic.t

type histogram = {
  h_buckets : float array;  (** sorted upper bounds *)
  h_counts : int Atomic.t array array;  (** stripe → bucket counts *)
  h_sum : float Atomic.t array;  (** per stripe *)
  h_max : float Atomic.t array;  (** per stripe *)
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

type t = {
  mutex : Mutex.t;  (** guards instrument creation, not updates *)
  instruments : (string, instrument) Hashtbl.t;
  help : (string, string) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    instruments = Hashtbl.create 32;
    help = Hashtbl.create 32;
  }

(* ---------------------------------------------------------------- *)
(* Instrument creation                                               *)
(* ---------------------------------------------------------------- *)

let with_registry t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let register t ?help name make match_existing =
  with_registry t (fun () ->
      (match help with
      | Some h -> Hashtbl.replace t.help name h
      | None -> ());
      match Hashtbl.find_opt t.instruments name with
      | Some existing -> match_existing existing
      | None ->
        let i = make () in
        Hashtbl.replace t.instruments name i;
        i)

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s, not a %s"
       name (kind_name got) want)

let counter t ?help name : counter =
  match
    register t ?help name
      (fun () -> I_counter (Array.init stripes (fun _ -> Atomic.make 0)))
      (function I_counter _ as i -> i | i -> wrong_kind name "counter" i)
  with
  | I_counter c -> c
  | _ -> assert false

let gauge t ?help name : gauge =
  match
    register t ?help name
      (fun () -> I_gauge (Atomic.make 0.0))
      (function I_gauge _ as i -> i | i -> wrong_kind name "gauge" i)
  with
  | I_gauge g -> g
  | _ -> assert false

let default_buckets_ms =
  [|
    0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0;
    500.0; 1000.0; 2500.0; 5000.0;
  |]

let exponential_buckets ~start ~factor ~count =
  if start <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Registry.exponential_buckets";
  Array.init count (fun i -> start *. (factor ** float_of_int i))

let validate_buckets name buckets =
  let n = Array.length buckets in
  if n = 0 then
    invalid_arg (Printf.sprintf "Registry: histogram %s: empty buckets" name);
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg
        (Printf.sprintf
           "Registry: histogram %s: buckets must be strictly increasing"
           name)
  done

let histogram t ?help ?(buckets = default_buckets_ms) name : histogram =
  validate_buckets name buckets;
  match
    register t ?help name
      (fun () ->
        let nb = Array.length buckets + 1 in
        I_histogram
          {
            h_buckets = Array.copy buckets;
            h_counts =
              Array.init stripes (fun _ ->
                  Array.init nb (fun _ -> Atomic.make 0));
            h_sum = Array.init stripes (fun _ -> Atomic.make 0.0);
            h_max = Array.init stripes (fun _ -> Atomic.make 0.0);
          })
      (function
        | I_histogram h as i ->
          if h.h_buckets <> buckets then
            invalid_arg
              (Printf.sprintf
                 "Registry: histogram %s already registered with \
                  different buckets" name);
          i
        | i -> wrong_kind name "histogram" i)
  with
  | I_histogram h -> h
  | _ -> assert false

(* ---------------------------------------------------------------- *)
(* Updates (lock-free)                                               *)
(* ---------------------------------------------------------------- *)

let add (c : counter) n = ignore (Atomic.fetch_and_add c.(stripe_index ()) n)

let incr c = add c 1

let counter_value (c : counter) =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c

let set (g : gauge) v = Atomic.set g v

let rec cas_add cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then cas_add cell x

let rec cas_max cell x =
  let old = Atomic.get cell in
  if x > old && not (Atomic.compare_and_set cell old x) then cas_max cell x

(* Smallest bucket whose upper bound admits [v]; the trailing overflow
   slot when none does. *)
let bucket_for buckets v =
  let n = Array.length buckets in
  let rec go lo hi =
    (* invariant: every bucket < lo is too small, every >= hi admits v *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if v <= buckets.(mid) then go lo mid else go (mid + 1) hi
    end
  in
  go 0 n

let observe (h : histogram) v =
  let s = stripe_index () in
  ignore (Atomic.fetch_and_add h.h_counts.(s).(bucket_for h.h_buckets v) 1);
  cas_add h.h_sum.(s) v;
  cas_max h.h_max.(s) v

(* ---------------------------------------------------------------- *)
(* Snapshots                                                         *)
(* ---------------------------------------------------------------- *)

module Snapshot = struct
  type histo = {
    buckets : float array;
    counts : int array;
    sum : float;
    max_value : float;
  }

  type t = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * histo) list;
    help : (string * string) list;
  }

  let empty = { counters = []; gauges = []; histograms = []; help = [] }

  let count (h : histo) = Array.fold_left ( + ) 0 h.counts

  let quantile (h : histo) p =
    let total = count h in
    if total = 0 then 0.0
    else begin
      let rank = p /. 100.0 *. float_of_int total in
      let nb = Array.length h.buckets in
      let rec go i cum =
        if i > nb then h.max_value
        else begin
          let cum' = cum + h.counts.(i) in
          if float_of_int cum' >= rank && h.counts.(i) > 0 then begin
            let lo = if i = 0 then 0.0 else h.buckets.(i - 1) in
            let hi = if i < nb then h.buckets.(i) else h.max_value in
            let hi = max lo hi in
            lo
            +. (hi -. lo)
               *. ((rank -. float_of_int cum) /. float_of_int h.counts.(i))
          end
          else go (i + 1) cum'
        end
      in
      min (go 0 0) h.max_value |> max 0.0
    end

  let merge_assoc ~combine a b =
    (* both inputs sorted by name; keep the output sorted *)
    let rec go acc a b =
      match (a, b) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | (ka, va) :: ta, (kb, vb) :: tb ->
        if ka < kb then go ((ka, va) :: acc) ta b
        else if kb < ka then go ((kb, vb) :: acc) a tb
        else go ((ka, combine ka va vb) :: acc) ta tb
    in
    go [] a b

  let merge (a : t) (b : t) : t =
    {
      counters = merge_assoc ~combine:(fun _ x y -> x + y) a.counters b.counters;
      gauges = merge_assoc ~combine:(fun _ _ y -> y) a.gauges b.gauges;
      histograms =
        merge_assoc a.histograms b.histograms ~combine:(fun name x y ->
            if x.buckets <> y.buckets then
              invalid_arg
                (Printf.sprintf
                   "Snapshot.merge: histogram %s has different buckets"
                   name);
            {
              buckets = x.buckets;
              counts = Array.mapi (fun i c -> c + y.counts.(i)) x.counts;
              sum = x.sum +. y.sum;
              max_value = max x.max_value y.max_value;
            });
      help = merge_assoc ~combine:(fun _ _ y -> y) a.help b.help;
    }

  let find_counter name (t : t) = List.assoc_opt name t.counters

  let find_histogram name (t : t) = List.assoc_opt name t.histograms

  let to_json (t : t) : Json.t =
    let histo_json (h : histo) =
      Json.Obj
        [
          ( "buckets",
            Json.List
              (Array.to_list (Array.map (fun b -> Json.Float b) h.buckets))
          );
          ( "counts",
            Json.List
              (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)) );
          ("count", Json.Int (count h));
          ("sum", Json.Float h.sum);
          ("max", Json.Float h.max_value);
        ]
    in
    Json.Obj
      [
        Schema.field Schema.Telemetry;
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters) );
        ( "gauges",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.gauges) );
        ( "histograms",
          Json.Obj
            (List.map (fun (k, h) -> (k, histo_json h)) t.histograms) );
        ( "help",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.help) );
      ]

  let of_json (j : Json.t) : t =
    Schema.check_exn Schema.Telemetry j;
    let bad fmt = Printf.ksprintf (fun m -> raise (Json.Parse_error m)) fmt in
    let fields name =
      match Json.member name j with
      | None -> []
      | Some (Json.Obj kvs) -> kvs
      | Some _ -> bad "telemetry: %S must be an object" name
    in
    let int_of name = function
      | Json.Int n -> n
      | _ -> bad "telemetry: %S must be an integer" name
    in
    let float_of name = function
      | Json.Int n -> float_of_int n
      | Json.Float f -> f
      | _ -> bad "telemetry: %S must be a number" name
    in
    let histo_of name = function
      | Json.Obj _ as o ->
        let arr field conv =
          match Json.member field o with
          | Some (Json.List l) -> Array.of_list (List.map (conv field) l)
          | _ -> bad "telemetry: histogram %S needs %S" name field
        in
        let buckets = arr "buckets" float_of in
        let counts = arr "counts" int_of in
        if Array.length counts <> Array.length buckets + 1 then
          bad "telemetry: histogram %S: counts must be buckets+1 long" name;
        {
          buckets;
          counts;
          sum =
            (match Json.member "sum" o with
            | Some v -> float_of "sum" v
            | None -> bad "telemetry: histogram %S needs \"sum\"" name);
          max_value =
            (match Json.member "max" o with
            | Some v -> float_of "max" v
            | None -> bad "telemetry: histogram %S needs \"max\"" name);
        }
      | _ -> bad "telemetry: histogram %S must be an object" name
    in
    let str_of name = function
      | Json.Str s -> s
      | _ -> bad "telemetry: %S must be a string" name
    in
    {
      counters = List.map (fun (k, v) -> (k, int_of k v)) (fields "counters");
      gauges = List.map (fun (k, v) -> (k, float_of k v)) (fields "gauges");
      histograms =
        List.map (fun (k, v) -> (k, histo_of k v)) (fields "histograms");
      help = List.map (fun (k, v) -> (k, str_of k v)) (fields "help");
    }

  let to_prometheus (t : t) : string =
    let buf = Buffer.create 4096 in
    let num f =
      (* integral floats print without a fraction, like Prometheus does *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.9g" f
    in
    let header name kind =
      (match List.assoc_opt name t.help with
      | Some h -> Printf.bprintf buf "# HELP %s %s\n" name h
      | None -> ());
      Printf.bprintf buf "# TYPE %s %s\n" name kind
    in
    List.iter
      (fun (name, v) ->
        header name "counter";
        Printf.bprintf buf "%s %d\n" name v)
      t.counters;
    List.iter
      (fun (name, v) ->
        header name "gauge";
        Printf.bprintf buf "%s %s\n" name (num v))
      t.gauges;
    List.iter
      (fun (name, h) ->
        header name "histogram";
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length h.buckets then num h.buckets.(i)
              else "+Inf"
            in
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" name le !cum)
          h.counts;
        Printf.bprintf buf "%s_sum %s\n" name (num h.sum);
        Printf.bprintf buf "%s_count %d\n" name !cum)
      t.histograms;
    Buffer.contents buf
end

let snapshot (t : t) : Snapshot.t =
  let counters = ref [] and gauges = ref [] in
  let histograms = ref [] and help = ref [] in
  with_registry t (fun () ->
      Hashtbl.iter
        (fun name i ->
          match i with
          | I_counter c -> counters := (name, counter_value c) :: !counters
          | I_gauge g -> gauges := (name, Atomic.get g) :: !gauges
          | I_histogram h ->
            let nb = Array.length h.h_buckets + 1 in
            let counts = Array.make nb 0 in
            Array.iter
              (fun stripe ->
                Array.iteri
                  (fun i c -> counts.(i) <- counts.(i) + Atomic.get c)
                  stripe)
              h.h_counts;
            let fold f init cells =
              Array.fold_left (fun acc c -> f acc (Atomic.get c)) init cells
            in
            histograms :=
              ( name,
                {
                  Snapshot.buckets = Array.copy h.h_buckets;
                  counts;
                  sum = fold ( +. ) 0.0 h.h_sum;
                  max_value = fold max 0.0 h.h_max;
                } )
              :: !histograms)
        t.instruments;
      Hashtbl.iter (fun k v -> help := (k, v) :: !help) t.help);
  {
    Snapshot.counters = List.sort compare !counters;
    gauges = List.sort compare !gauges;
    histograms =
      List.sort (fun (a, _) (b, _) -> compare a b) !histograms;
    help = List.sort compare !help;
  }

(* ---------------------------------------------------------------- *)
(* The process-wide runtime registry                                 *)
(* ---------------------------------------------------------------- *)

let runtime = create ()

let runtime_users = Atomic.make 0

let acquire_runtime () = ignore (Atomic.fetch_and_add runtime_users 1)

let release_runtime () =
  ignore (Atomic.fetch_and_add runtime_users (-1))

let runtime_enabled () = Atomic.get runtime_users > 0
