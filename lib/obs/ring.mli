(** Fixed-capacity ring buffer: keeps the most recent [capacity] pushes.
    The metrics sampler stores its time series here so arbitrarily long
    runs dump a bounded number of samples. *)

type 'a t

val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Elements currently held (≤ capacity). *)
val length : 'a t -> int

(** Total pushes over the ring's lifetime (≥ [length]). *)
val pushed : 'a t -> int

val push : 'a t -> 'a -> unit

(** Retained elements, oldest first. *)
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
