(** Minimal JSON tree, serializer and parser.

    Every machine-readable artifact of the observability layer — trace
    files, metrics dumps, build statistics, bench results — goes through
    this module, and the tests parse the artifacts back through it, so
    "emits valid JSON" is checked by construction. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** Pretty serializer (2-space indent) for artifacts meant to be opened
    in an editor as well as parsed. *)
val to_string_pretty : t -> string

exception Parse_error of string

(** Parse one JSON document; trailing garbage is an error. *)
val parse : string -> t

(* -------- accessors (total: return [None] on shape mismatch) -------- *)

val member : string -> t -> t option

val to_int_opt : t -> int option

(** Accepts both [Int] and [Float] payloads. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option

val to_list_opt : t -> t list option

(* -------- raising accessors for test code -------- *)

val get : string -> t -> t

val get_int : string -> t -> int

val get_float : string -> t -> float

val get_string : string -> t -> string

val get_list : string -> t -> t list
