(** Leveled structured JSONL event log (see the .mli). *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type state = { oc : out_channel; mutex : Mutex.t; threshold : level }

let current : state option Atomic.t = Atomic.make None

let stop () =
  match Atomic.get current with
  | None -> ()
  | Some st ->
    Atomic.set current None;
    Mutex.lock st.mutex;
    (try close_out st.oc with Sys_error _ -> ());
    Mutex.unlock st.mutex

let start ?(level = Info) ~path () =
  stop ();
  Atomic.set current
    (Some { oc = open_out path; mutex = Mutex.create (); threshold = level })

let enabled level =
  match Atomic.get current with
  | None -> false
  | Some st -> severity level >= severity st.threshold

let log level event fields =
  match Atomic.get current with
  | None -> ()
  | Some st ->
    if severity level >= severity st.threshold then begin
      let line =
        Json.Obj
          ([
             ("ts_ms", Json.Float (Unix.gettimeofday () *. 1000.0));
             ("level", Json.Str (level_name level));
             ("event", Json.Str event);
           ]
          @ fields)
      in
      Mutex.lock st.mutex;
      (try
         output_string st.oc (Json.to_string line);
         output_char st.oc '\n';
         flush st.oc
       with Sys_error _ -> ());
      Mutex.unlock st.mutex
    end
