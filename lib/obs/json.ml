(** Minimal JSON tree, serializer and parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf (j : t) =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List js ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i j ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf j)
      js;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let rec pretty_to_buffer buf indent (j : t) =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | List [] | Obj [] | Null | Bool _ | Int _ | Float _ | Str _ ->
    to_buffer buf j
  | List js ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i j ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        pretty_to_buffer buf (indent + 2) j)
      js;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        add_escaped buf k;
        Buffer.add_string buf ": ";
        pretty_to_buffer buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 512 in
  pretty_to_buffer buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string                      *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance p;
    skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail "expected '%c' at offset %d, found '%c'" c p.pos c'
  | None -> fail "expected '%c' at offset %d, found end of input" c p.pos

let parse_literal p word (v : t) =
  if
    p.pos + String.length word <= String.length p.src
    && String.sub p.src p.pos (String.length word) = word
  then begin
    p.pos <- p.pos + String.length word;
    v
  end
  else fail "invalid literal at offset %d" p.pos

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail "unterminated string at offset %d" p.pos
    | Some '"' -> advance p
    | Some '\\' -> begin
      advance p;
      (match peek p with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if p.pos + 4 >= String.length p.src then
          fail "truncated \\u escape at offset %d" p.pos;
        let hex = String.sub p.src (p.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail "bad \\u escape at offset %d" p.pos
        in
        (* encode the code point as UTF-8 (surrogate pairs not recombined;
           the tracer never emits them) *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        p.pos <- p.pos + 4
      | _ -> fail "bad escape at offset %d" p.pos);
      advance p;
      loop ()
    end
    | Some c ->
      Buffer.add_char buf c;
      advance p;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let rec loop () =
    match peek p with
    | Some ('0' .. '9' | '-' | '+') ->
      advance p;
      loop ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance p;
      loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail "bad number %S at offset %d" text start
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> begin
      (* very large integers fall back to float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" text start
    end

let rec parse_value p : t =
  skip_ws p;
  match peek p with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws p;
        let key = parse_string_body p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance p;
          List.rev ((key, v) :: acc)
        | _ -> fail "expected ',' or '}' at offset %d" p.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          elems (v :: acc)
        | Some ']' ->
          advance p;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at offset %d" p.pos
      in
      List (elems [])
    end
  | Some '"' -> Str (parse_string_body p)
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some 'n' -> parse_literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail "unexpected character '%c' at offset %d" c p.pos

let parse (s : string) : t =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then
    fail "trailing garbage at offset %d" p.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_list_opt = function List js -> Some js | _ -> None

let get key j =
  match member key j with
  | Some v -> v
  | None -> fail "missing key %S" key

let get_int key j =
  match to_int_opt (get key j) with
  | Some n -> n
  | None -> fail "key %S is not an int" key

let get_float key j =
  match to_float_opt (get key j) with
  | Some f -> f
  | None -> fail "key %S is not a number" key

let get_string key j =
  match to_string_opt (get key j) with
  | Some s -> s
  | None -> fail "key %S is not a string" key

let get_list key j =
  match to_list_opt (get key j) with
  | Some l -> l
  | None -> fail "key %S is not a list" key
