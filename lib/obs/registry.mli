(** Typed metrics registry: named counters, gauges and fixed-bucket
    histograms with per-domain accumulation and snapshot/merge.

    Instruments are created once by name ({!counter} / {!gauge} /
    {!histogram} return the existing instrument on a repeat name) and
    then updated lock-free: counters and histogram bucket counts are
    striped across a small array of atomics indexed by the calling
    domain, so worker domains never contend on one cache line; float
    accumulators (histogram sum / max) use CAS loops.  {!snapshot}
    folds the stripes into one immutable {!Snapshot.t} that can be
    merged with other snapshots, queried for quantiles, exported as the
    [gofree-telemetry-v1] JSON document or as Prometheus text
    exposition.

    The process-wide {!runtime} registry carries the simulated runtime's
    instruments (GC pause/gap histograms, tcfree counters).  Recording
    into it is gated by {!runtime_enabled} — a single atomic load — so
    the disabled path costs one load and a branch, like the tracer. *)

type t

val create : unit -> t

(** {1 Instruments} *)

type counter

type gauge

type histogram

(** Create-or-return by name.  Raises [Invalid_argument] if [name]
    already names an instrument of another kind. *)
val counter : t -> ?help:string -> string -> counter

val gauge : t -> ?help:string -> string -> gauge

(** [buckets] are strictly increasing upper bounds (an implicit
    overflow bucket catches everything above the last); defaults to
    {!default_buckets_ms}.  Raises [Invalid_argument] on unsorted or
    empty buckets, or if [name] exists with different buckets. *)
val histogram : t -> ?help:string -> ?buckets:float array -> string ->
  histogram

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** Last write wins. *)
val set : gauge -> float -> unit

val observe : histogram -> float -> unit

(** {1 Bucket ladders} *)

(** General-purpose request-latency ladder, 0.05ms .. 5s. *)
val default_buckets_ms : float array

(** [count] bounds growing geometrically from [start] by [factor].
    Raises [Invalid_argument] unless [start > 0], [factor > 1] and
    [count >= 1]. *)
val exponential_buckets : start:float -> factor:float -> count:int ->
  float array

(** {1 Snapshots} *)

module Snapshot : sig
  type histo = {
    buckets : float array;  (** upper bounds, sorted *)
    counts : int array;  (** per bucket, length [buckets + 1] (overflow) *)
    sum : float;
    max_value : float;  (** largest observation; 0 when empty *)
  }

  type t = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * float) list;
    histograms : (string * histo) list;
    help : (string * string) list;
  }

  val empty : t

  val count : histo -> int

  (** Quantile estimate by linear interpolation inside the bucket the
      rank falls in; [p] in [0, 100].  Monotone in [p], clamped to
      [max_value] (so p99 never exceeds the tracked maximum), 0 on an
      empty histogram. *)
  val quantile : histo -> float -> float

  (** Pointwise merge: counters add, gauges are right-biased, histogram
      counts/sums add and maxima take the max.  Associative (counter
      and bucket-count addition is exact; use it to fold per-domain or
      per-registry snapshots).  Raises [Invalid_argument] when the two
      sides define the same histogram with different buckets. *)
  val merge : t -> t -> t

  val find_counter : string -> t -> int option

  val find_histogram : string -> t -> histo option

  (** The [gofree-telemetry-v1] document. *)
  val to_json : t -> Json.t

  (** Inverse of {!to_json}; checks the schema tag.  Raises
      {!Json.Parse_error} on a malformed document. *)
  val of_json : Json.t -> t

  (** Prometheus text exposition (HELP/TYPE comments, cumulative
      [_bucket{le="..."}] ladders with [+Inf], [_sum], [_count]). *)
  val to_prometheus : t -> string
end

val snapshot : t -> Snapshot.t

(** {1 The process-wide runtime registry} *)

val runtime : t

(** Reference-counted enablement: the daemon acquires for its lifetime;
    benches acquire around a measured region.  Balanced release keeps
    concurrent in-process servers from disabling each other. *)
val acquire_runtime : unit -> unit

val release_runtime : unit -> unit

(** One atomic load — the guard call sites use before recording. *)
val runtime_enabled : unit -> bool
