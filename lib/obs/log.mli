(** Leveled structured event log: one JSON object per line (JSONL).

    A process-wide singleton like {!Trace}: when disabled (the default)
    every {!log} call is one atomic load and a branch.  When enabled,
    events at or above the configured level are serialized under a mutex
    and flushed per line, so a tail of the file is always whole lines —
    including from worker domains and reader threads.

    Line shape:
    {v
    {"ts_ms":1723111845123.4,"level":"info","event":"request",
     "req":17,"method":"run","queue_wait_ms":0.4,...}
    v}

    Call sites that build field lists should guard with {!enabled} so
    the arguments are only constructed when a log is being written. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

(** Case-insensitive; [None] on an unknown name. *)
val level_of_name : string -> level option

(** Open [path] (truncating) and log events at [level] and above
    (default [Info]). *)
val start : ?level:level -> path:string -> unit -> unit

(** Flush, close, disable.  No-op when disabled. *)
val stop : unit -> unit

(** Is a log open {e and} accepting events at [level]? *)
val enabled : level -> bool

(** [log level event fields] writes one line; dropped when disabled or
    below the configured level. *)
val log : level -> string -> (string * Json.t) list -> unit
