(** Registry of the JSON document schemas this codebase emits.

    Every machine-readable document carries a ["schema"] field whose
    value is one fixed tag per document family ([gofree-<family>-v1]).
    Producers stamp documents with {!field}; consumers gate parsing on
    {!check} (or {!check_exn}) so a version or family mismatch fails
    with one clear message instead of a shape error deep inside the
    decoder. *)

type t =
  | Metrics  (** runtime counters, [Gofree_runtime.Metrics.to_json] *)
  | Samples  (** sampler time series, [Gofree_runtime.Sampler.to_json] *)
  | Build_stats  (** build driver waves/cache, [Driver.stats_to_json] *)
  | Explain  (** freeing diagnostics, [Report.explain_to_json] *)
  | Bench  (** the BENCH_gofree.json evaluation export *)
  | Rpc  (** the [gofreec serve] wire protocol *)
  | Load  (** the [gofreec load] harness report *)
  | Telemetry  (** metrics-registry snapshots, [Registry.Snapshot.to_json] *)
  | Precision  (** the precision-mode smoke export, [precision_smoke.json] *)

let all =
  [
    Metrics; Samples; Build_stats; Explain; Bench; Rpc; Load; Telemetry;
    Precision;
  ]

let tag = function
  | Metrics -> "gofree-metrics-v1"
  | Samples -> "gofree-samples-v1"
  | Build_stats -> "gofree-build-stats-v1"
  | Explain -> "gofree-explain-v1"
  | Bench -> "gofree-bench-v1"
  | Rpc -> "gofree-rpc-v2"
  | Load -> "gofree-load-v1"
  | Telemetry -> "gofree-telemetry-v1"
  | Precision -> "gofree-precision-v1"

(** Older tags of the same family that consumers still accept.  RPC v1
    (flat preset-name ["config"]) remains decodable by the v2 daemon;
    producers always stamp the current {!tag}. *)
let legacy_tags = function Rpc -> [ "gofree-rpc-v1" ] | _ -> []

let of_tag s =
  List.find_opt (fun t -> tag t = s || List.mem s (legacy_tags t)) all

(** The [("schema", ...)] field a document of kind [t] must carry; by
    convention the first field of the object. *)
let field t = ("schema", Json.Str (tag t))

(** Check that [j] is an object declaring schema [t].  [Error] carries a
    human-readable diagnosis: missing field, non-string field, a known
    tag of another family, or an unknown (e.g. future-version) tag. *)
let check t (j : Json.t) : (unit, string) result =
  match Json.member "schema" j with
  | None ->
    Error
      (Printf.sprintf "document has no \"schema\" field (expected %s)"
         (tag t))
  | Some (Json.Str s) when s = tag t || List.mem s (legacy_tags t) -> Ok ()
  | Some (Json.Str s) -> begin
    match of_tag s with
    | Some _ ->
      Error
        (Printf.sprintf "schema mismatch: expected %s, got %s" (tag t) s)
    | None ->
      Error
        (Printf.sprintf
           "unknown schema %s (expected %s); produced by a newer \
            version?" s (tag t))
  end
  | Some _ ->
    Error
      (Printf.sprintf "\"schema\" field is not a string (expected %s)"
         (tag t))

(** [check] raising {!Json.Parse_error} — for decoders that already
    signal shape errors that way. *)
let check_exn t j =
  match check t j with
  | Ok () -> ()
  | Error m -> raise (Json.Parse_error m)
