(** Fixed-capacity ring buffer keeping the most recent pushes. *)

type 'a t = {
  slots : 'a option array;
  mutable next : int;  (** slot the next push writes *)
  mutable total : int;  (** pushes over the lifetime *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.slots

let length t = min t.total (Array.length t.slots)

let pushed t = t.total

let push t x =
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.total <- t.total + 1

let to_list t =
  let cap = Array.length t.slots in
  let n = length t in
  let first = (t.next - n + cap) mod cap in
  List.init n (fun i ->
      match t.slots.((first + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.total <- 0
