(** Machine-readable benchmark export: one command emits
    [BENCH_gofree.json] with, per workload, the headline runtime metrics
    under Go and GoFree (free ratio, GC cycles, maxheap, wall time) plus
    the compile-phase timings recovered from an in-memory trace capture.

    Run with [dune exec bench/main.exe -- --only bench_json]. *)

module W = Gofree_workloads.Workloads
module Json = Gofree_obs.Json
module Trace = Gofree_obs.Trace
module Stats = Gofree_stats.Stats
open Bench_common

(* Compile once under a live tracer and fold the captured span stream
   into per-phase totals (µs).  Spans of one phase never self-nest, so a
   name-keyed open-timestamp table is enough to pair B with E.  The
   interpreter's lowering passes (closure compilation, "lower", and
   bytecode emission, "emit") run after the pipeline so their spans land
   in the same capture. *)
let compile_phase_timings source : (string * float) list =
  Trace.start ();
  (try
     let compiled = Gofree_core.Pipeline.compile source in
     let program = compiled.Gofree_core.Pipeline.c_program in
     let decisions =
       Gofree_interp.Decisions.of_analysis
         compiled.Gofree_core.Pipeline.c_analysis program
     in
     let layout = Gofree_interp.Layout.of_program program in
     ignore (Gofree_interp.Compile.lower program decisions layout);
     ignore (Gofree_interp.Emit.lower program decisions layout)
   with _ -> ());
  let doc = Trace.stop () in
  let events = Json.get_list "traceEvents" (Json.parse doc) in
  let opens = Hashtbl.create 16 in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = Json.get_string "name" e in
      let ts = Json.get_float "ts" e in
      match Json.get_string "ph" e with
      | "B" -> Hashtbl.replace opens name ts
      | "E" -> begin
        match Hashtbl.find_opt opens name with
        | Some t0 ->
          Hashtbl.remove opens name;
          let so_far =
            Option.value (Hashtbl.find_opt totals name) ~default:0.0
          in
          Hashtbl.replace totals name (so_far +. ts -. t0)
        | None -> ()
      end
      | _ -> ())
    events;
  List.map
    (fun phase ->
      (phase, Option.value (Hashtbl.find_opt totals phase) ~default:0.0))
    [ "lex"; "parse"; "typecheck"; "escape"; "instrument"; "lower"; "emit" ]

let setting_json (results : run_result array) : Json.t =
  let med f = Stats.median (Array.map f results) in
  let last = results.(Array.length results - 1) in
  let m = last.r_metrics in
  Json.Obj
    [
      ("wall_ns", Json.Float (med (fun r -> r.r_time_ms *. 1e6)));
      ("gc_time_ns", Json.Float (med (fun r -> r.r_gc_time_ms *. 1e6)));
      ("gc_cycles", Json.Float (med (fun r -> r.r_gcs)));
      ( "maxheap_bytes",
        Json.Float
          (med (fun r ->
               r.r_maxheap
               *. float_of_int Gofree_runtime.Sizeclass.page_size)) );
      ("alloced_bytes", Json.Float (med (fun r -> r.r_alloced)));
      ("freed_bytes", Json.Float (med (fun r -> r.r_freed)));
      ("free_ratio", Json.Float (Gofree_runtime.Metrics.free_ratio m));
    ]

let run ~options () =
  heading "Machine-readable benchmark export (BENCH_gofree.json)";
  let workloads =
    List.map
      (fun (w : W.t) ->
        let size = scaled_size ~options w in
        let source = W.source_of ~size w in
        Printf.printf "  %-12s size %-7d ... %!" w.W.w_name size;
        let per_setting =
          run_interleaved ~options ~settings:[ Go; Gofree ] source
        in
        let phases = compile_phase_timings source in
        Printf.printf "done\n%!";
        Json.Obj
          [
            ("name", Json.Str w.W.w_name);
            ("size", Json.Int size);
            ( "settings",
              Json.Obj
                (List.map
                   (fun (s, results) ->
                     (setting_name s, setting_json results))
                   per_setting) );
            ( "compile_phases_us",
              Json.Obj
                (List.map (fun (p, us) -> (p, Json.Float us)) phases) );
          ])
      W.all
  in
  let doc =
    Json.Obj
      [
        Gofree_obs.Schema.(field Bench);
        ("runs", Json.Int options.runs);
        ("scale_pct", Json.Int options.scale);
        ("seed", Json.Int options.seed);
        ("engine", Json.Str (engine_name options.engine));
        ("workloads", Json.List workloads);
        ("incremental", Exp_incremental.measure ~options ());
        ("load", Exp_load.measure ~options ());
        ("telemetry", Exp_telemetry.measure ~options ());
        ("precision", Exp_precision.measure ~options ());
        ("parallel", Exp_parallel.measure ~options ());
      ]
  in
  let oc = open_out "BENCH_gofree.json" in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "  wrote BENCH_gofree.json (%d workloads)\n"
    (List.length workloads)
