(** What the telemetry layer costs and what it sees.

    Two questions, one experiment each:

    - {e overhead}: the runtime registry's instruments (GC pause/gap
      histograms, tcfree counters) record only while something holds
      [Registry.acquire_runtime]; otherwise each call site pays one
      atomic load and a branch.  Interleaved repetitions of one
      GC-heavy workload with the registry disabled and enabled measure
      that cost end to end — the enabled/disabled wall-time ratio
      should be indistinguishable from 1.

    - {e decomposition}: a fresh in-process daemon per load point
      (1/4/8 closed-loop clients), a brief harness run, then one
      [telemetry] scrape.  The scrape's queue-wait / service / request
      histograms decompose the client-observed latency server-side:
      queue-wait p99 is the curve that grows with concurrency while
      service p99 stays put, and GC pause p99 rides along from the
      runtime registry (the daemon holds the runtime acquisition for
      its lifetime).  Client p99 and server request p99 are reported
      side by side — they must tell the same story.

    [measure ~options ()] returns the ["telemetry"] section of
    [BENCH_gofree.json]; [run ~options ()] prints the tables. *)

module Json = Gofree_obs.Json
module Reg = Gofree_obs.Registry
module Server = Gofree_server.Server
module Client = Gofree_server.Client
module Rpc = Gofree_server.Rpc
module Harness = Gofree_load.Harness
module Stats = Gofree_stats.Stats

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-telemetry-%d-%d.sock" (Unix.getpid ()) !n)

let ok_exn = function
  | Ok v -> v
  | Error m -> failwith ("telemetry bench: " ^ m)

(* ---- overhead: runtime registry disabled vs enabled ---- *)

type overhead = {
  o_runs : int;
  o_disabled_ms : float;  (** mean wall ms, registry disabled *)
  o_enabled_ms : float;  (** mean wall ms, registry recording *)
  o_ratio : float;  (** enabled / disabled *)
}

let measure_overhead ~(options : Bench_common.options) : overhead =
  (* per-request cost capped like the load bench: this measures the
     instrument guards, not the workload *)
  let options =
    { options with Bench_common.scale = max 1 (min options.scale 25) }
  in
  let w = List.hd Gofree_workloads.Workloads.all in
  let size = Bench_common.scaled_size ~options w in
  let src = w.Gofree_workloads.Workloads.w_source ~size in
  let run () =
    (Bench_common.run_once ~options ~setting:Bench_common.Gofree src)
      .Bench_common.r_time_ms
  in
  ignore (run ());
  let runs = max 3 (min options.runs 7) in
  let disabled = Array.make runs 0.0 and enabled = Array.make runs 0.0 in
  (* interleaved so host drift biases neither side *)
  for i = 0 to runs - 1 do
    disabled.(i) <- run ();
    Reg.acquire_runtime ();
    Fun.protect
      ~finally:(fun () -> Reg.release_runtime ())
      (fun () -> enabled.(i) <- run ())
  done;
  let d = Stats.mean disabled and e = Stats.mean enabled in
  {
    o_runs = runs;
    o_disabled_ms = d;
    o_enabled_ms = e;
    o_ratio = (if d = 0.0 then 1.0 else e /. d);
  }

let overhead_json (o : overhead) : Json.t =
  Json.Obj
    [
      ("runs", Json.Int o.o_runs);
      ("disabled_ms", Json.Float o.o_disabled_ms);
      ("enabled_ms", Json.Float o.o_enabled_ms);
      ("ratio", Json.Float o.o_ratio);
    ]

(* ---- decomposition: one daemon + scrape per load point ---- *)

type point = {
  p_clients : int;
  p_ok : int;
  p_client_p50_ms : float;  (** client-observed, harness report *)
  p_client_p99_ms : float;
  p_queue_wait_p50_ms : float;  (** server-side, telemetry scrape *)
  p_queue_wait_p99_ms : float;
  p_service_p50_ms : float;
  p_service_p99_ms : float;
  p_request_p99_ms : float;
  p_gc_pause_p99_ms : float;
  p_gc_pauses : int;
  p_tcfree_attempts : int;
  p_tcfree_freed : int;
  p_tcfree_giveup : int;
  p_responses : int;  (** gofree_rpc_responses_total at scrape time *)
}

let scrape ~socket : Reg.Snapshot.t =
  match Client.call_once ~socket Rpc.Telemetry with
  | Ok doc -> Reg.Snapshot.of_json doc
  | Error (code, m) ->
    failwith (Printf.sprintf "telemetry scrape: %s: %s" code m)
  | exception Client.Error m -> failwith ("telemetry scrape: " ^ m)

let run_point ~(options : Bench_common.options) ~clients : point =
  let socket = fresh_socket () in
  let t = Server.start ~socket () in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let cfg =
        {
          (Harness.default_config ~socket) with
          Harness.clients;
          duration_s = 1.0;
          scale = max 1 (min options.scale 25);
          seed = options.seed + clients;
        }
      in
      let report = ok_exn (Harness.run cfg) in
      let snap = scrape ~socket in
      let lat = Json.get "all" (Json.get "latency_ms" report) in
      let pct name =
        match Json.member name lat with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> 0.0
      in
      let h name =
        Option.value
          (Reg.Snapshot.find_histogram name snap)
          ~default:
            {
              Reg.Snapshot.buckets = [| 1.0 |];
              counts = [| 0; 0 |];
              sum = 0.0;
              max_value = 0.0;
            }
      in
      let c name =
        Option.value (Reg.Snapshot.find_counter name snap) ~default:0
      in
      let qw = h "gofree_rpc_queue_wait_ms" in
      let svc = h "gofree_rpc_service_ms" in
      let req = h "gofree_rpc_request_ms" in
      let pause = h "gofree_gc_pause_ms" in
      {
        p_clients = clients;
        p_ok = Json.get_int "ok" (Json.get "achieved" report);
        p_client_p50_ms = pct "p50_ms";
        p_client_p99_ms = pct "p99_ms";
        p_queue_wait_p50_ms = Reg.Snapshot.quantile qw 50.0;
        p_queue_wait_p99_ms = Reg.Snapshot.quantile qw 99.0;
        p_service_p50_ms = Reg.Snapshot.quantile svc 50.0;
        p_service_p99_ms = Reg.Snapshot.quantile svc 99.0;
        p_request_p99_ms = Reg.Snapshot.quantile req 99.0;
        p_gc_pause_p99_ms = Reg.Snapshot.quantile pause 99.0;
        p_gc_pauses = Reg.Snapshot.count pause;
        p_tcfree_attempts = c "gofree_tcfree_attempts_total";
        p_tcfree_freed = c "gofree_tcfree_freed_total";
        p_tcfree_giveup = c "gofree_tcfree_giveup_total";
        p_responses = c "gofree_rpc_responses_total";
      })

let point_json (p : point) : Json.t =
  Json.Obj
    [
      ("clients", Json.Int p.p_clients);
      ("ok", Json.Int p.p_ok);
      ("client_p50_ms", Json.Float p.p_client_p50_ms);
      ("client_p99_ms", Json.Float p.p_client_p99_ms);
      ("queue_wait_p50_ms", Json.Float p.p_queue_wait_p50_ms);
      ("queue_wait_p99_ms", Json.Float p.p_queue_wait_p99_ms);
      ("service_p50_ms", Json.Float p.p_service_p50_ms);
      ("service_p99_ms", Json.Float p.p_service_p99_ms);
      ("request_p99_ms", Json.Float p.p_request_p99_ms);
      ("gc_pause_p99_ms", Json.Float p.p_gc_pause_p99_ms);
      ("gc_pauses", Json.Int p.p_gc_pauses);
      ("tcfree_attempts", Json.Int p.p_tcfree_attempts);
      ("tcfree_freed", Json.Int p.p_tcfree_freed);
      ("tcfree_giveup", Json.Int p.p_tcfree_giveup);
      ("responses_total", Json.Int p.p_responses);
    ]

type campaign = { t_overhead : overhead; t_points : point list }

let measure_campaign ~(options : Bench_common.options) : campaign =
  {
    t_overhead = measure_overhead ~options;
    t_points =
      List.map (fun clients -> run_point ~options ~clients) [ 1; 4; 8 ];
  }

(** The ["telemetry"] section of [BENCH_gofree.json]. *)
let measure ~options () : Json.t =
  let c = measure_campaign ~options in
  Json.Obj
    [
      ("overhead", overhead_json c.t_overhead);
      ("points", Json.List (List.map point_json c.t_points));
    ]

(* ---- human-readable run ---- *)

let run ~options () =
  let c = measure_campaign ~options in
  Bench_common.heading "telemetry: runtime registry overhead";
  Printf.printf
    "  %d interleaved runs — disabled %.2f ms, enabled %.2f ms, ratio \
     %.3f\n\n"
    c.t_overhead.o_runs c.t_overhead.o_disabled_ms
    c.t_overhead.o_enabled_ms c.t_overhead.o_ratio;
  Bench_common.heading
    "telemetry: latency decomposition (closed loop, fresh daemon per \
     point)";
  Printf.printf "  %-8s %6s %9s %9s %9s %9s %9s %9s %8s\n" "clients" "ok"
    "cli p99" "qw p50" "qw p99" "svc p99" "req p99" "gc p99" "tcfree";
  List.iter
    (fun p ->
      Printf.printf
        "  %-8d %6d %9.1f %9.2f %9.2f %9.1f %9.1f %9.2f %8d\n" p.p_clients
        p.p_ok p.p_client_p99_ms p.p_queue_wait_p50_ms p.p_queue_wait_p99_ms
        p.p_service_p99_ms p.p_request_p99_ms p.p_gc_pause_p99_ms
        p.p_tcfree_attempts)
    c.t_points;
  print_newline ();
  (* the server-side decomposition must tell the client's story: the
     request histogram's p99 is within the same regime as the
     client-observed p99 (client adds socket round-trip only) *)
  List.iter
    (fun p ->
      if p.p_ok > 0 && p.p_request_p99_ms > p.p_client_p99_ms *. 1.5 +. 5.0
      then
        failwith
          (Printf.sprintf
             "telemetry: server request p99 %.1f ms exceeds client p99 \
              %.1f ms at %d clients"
             p.p_request_p99_ms p.p_client_p99_ms p.p_clients))
    c.t_points
