(** Incremental-build latency: cold vs package-warm vs unit-warm.

    For the six paper workloads (as one-package trees) and the
    three-package multipkg example, measure the driver's rebuild latency
    after a one-function edit at each cache level:
    - {b cold}: [~force:true], both cache levels ignored;
    - {b package-warm}: the edit invalidates the package entry and, with
      the unit cache disabled ({!Gofree_build.Driver.no_unit_cache}),
      every unit of the package re-solves — the pre-unit-cache behavior;
    - {b unit-warm}: the same edit with the function-granular cache on —
      only the edited function's SCC unit re-solves.

    Also the intra-package parallel scaling of the analysis (walkall is
    the dominant pass): a wide one-package call DAG force-built with 1,
    2 and 4 worker domains.

    Run with [dune exec bench/main.exe -- --only incremental]; the same
    measurements land in [BENCH_gofree.json] under ["incremental"]. *)

module W = Gofree_workloads.Workloads
module B = Gofree_build
module Json = Gofree_obs.Json
open Bench_common

(* ---------------------------------------------------------------- *)
(* Temporary trees                                                   *)
(* ---------------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let tree_counter = ref 0

let write_file path src =
  let oc = open_out_bin path in
  output_string oc src;
  close_out oc

let make_tree files =
  incr tree_counter;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-bench-incr-%d-%d" (Unix.getpid ())
         !tree_counter)
  in
  mkdir_p root;
  List.iter
    (fun (rel, src) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      write_file path src)
    files;
  root

(* ---------------------------------------------------------------- *)
(* The one-function edit                                             *)
(* ---------------------------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Pad [fname]'s body with a no-op statement: the typed body (and so
    the unit key) changes, the summary does not. *)
let pad_func src fname =
  let needle = "func " ^ fname ^ "(" in
  let rec go acc = function
    | [] -> failwith ("pad_func: no function " ^ fname)
    | l :: rest when starts_with ~prefix:needle l ->
      List.rev_append acc (l :: "\tpad9 := 0" :: "\tpad9 = pad9" :: rest)
    | l :: rest -> go (l :: acc) rest
  in
  String.concat "\n" (go [] (String.split_on_char '\n' src))

let func_names src =
  List.filter_map
    (fun line ->
      if starts_with ~prefix:"func " line then
        match String.index_opt line '(' with
        | Some i ->
          let name = String.trim (String.sub line 5 (i - 5)) in
          if name <> "" && not (String.contains name ' ') then Some name
          else None
        | None -> None
      else None)
    (String.split_on_char '\n' src)

(** A function near the middle of the source — an arbitrary but
    deterministic edit target. *)
let edit_target src =
  let names = func_names src in
  List.nth names (List.length names / 2)

(* ---------------------------------------------------------------- *)
(* Timed builds                                                      *)
(* ---------------------------------------------------------------- *)

let timed_build ?unit_cache ?(force = false) root =
  Gc.major ();
  let t0 = Unix.gettimeofday () in
  let r = B.Driver.build ?unit_cache ~force root in
  ((Unix.gettimeofday () -. t0) *. 1000.0, r)

let median_ms samples = Gofree_stats.Stats.median (Array.of_list samples)

(** One subject: [files] is the tree, [edit] the (file, function) to
    pad-toggle between warm builds. *)
type subject = { sub_name : string; files : (string * string) list;
                 edit : string * string }

let subject_of_workload ~options (w : W.t) =
  let source = W.source_of ~size:(scaled_size ~options w) w in
  {
    sub_name = w.W.w_name;
    files = [ ("main.go", source) ];
    edit = ("main.go", edit_target source);
  }

(* the examples/multipkg tree, inlined so the harness does not depend
   on the working directory *)
let multipkg_subject =
  {
    sub_name = "multipkg";
    files =
      [
        ( "util/util.go",
          "package util\n\n\
           func Sum(xs []int) int {\n\ts := 0\n\tfor i := range xs {\n\
           \t\ts = s + xs[i]\n\t}\n\treturn s\n}\n\n\
           func MakeRange(n int) []int {\n\txs := make([]int, n)\n\
           \tfor i := range xs {\n\t\txs[i] = i\n\t}\n\treturn xs\n}\n\n\
           func scale(x int, k int) int {\n\treturn x * k\n}\n\n\
           func Scale(xs []int, k int) []int {\n\
           \tys := make([]int, len(xs))\n\tfor i := range xs {\n\
           \t\tys[i] = scale(xs[i], k)\n\t}\n\treturn ys\n}\n" );
        ( "data/data.go",
          "package data\n\nimport \"util\"\n\n\
           type Point struct {\n\tX int\n\tY int\n}\n\n\
           func Centroid(ps []Point) Point {\n\tn := len(ps)\n\
           \tif n == 0 {\n\t\treturn Point{}\n\t}\n\tsx := 0\n\tsy := 0\n\
           \tfor i := range ps {\n\t\tsx = sx + ps[i].X\n\
           \t\tsy = sy + ps[i].Y\n\t}\n\
           \treturn Point{X: sx / n, Y: sy / n}\n}\n\n\
           func Grid(n int) []Point {\n\txs := util.MakeRange(n)\n\
           \tps := make([]Point, n)\n\ttotal := util.Sum(xs)\n\
           \tfor i := range ps {\n\t\tps[i] = Point{X: xs[i], Y: total}\n\
           \t}\n\treturn ps\n}\n" );
        ( "main.go",
          "package main\n\nimport (\n\t\"util\"\n\t\"data\"\n)\n\n\
           func main() {\n\txs := util.MakeRange(16)\n\
           \tys := util.Scale(xs, 3)\n\ttotal := util.Sum(ys)\n\
           \tps := data.Grid(8)\n\tc := data.Centroid(ps)\n\
           \tprintln(\"total\", total)\n\
           \tprintln(\"centroid\", c.X, c.Y)\n}\n" );
      ];
    edit = ("util/util.go", "Sum");
  }

(** Measure one subject.  Warm builds toggle the pad edit on and off:
    each rebuild sees exactly one changed function, and because the
    unit-record set is replaced per commit, every toggle re-solves
    exactly one unit when the unit cache is on. *)
let measure_subject ~options sub =
  let root = make_tree sub.files in
  let rel, fname = sub.edit in
  let orig = List.assoc rel sub.files in
  let padded = pad_func orig fname in
  let path = Filename.concat root rel in
  let cold_samples = ref [] and units = ref 0 in
  for _ = 0 to options.runs do
    let ms, r = timed_build ~force:true root in
    units := r.B.Driver.b_stats.B.Driver.bs_unit_misses;
    cold_samples := ms :: !cold_samples
  done;
  let toggled = ref false in
  let toggle () =
    toggled := not !toggled;
    write_file path (if !toggled then padded else orig)
  in
  let warm ?unit_cache () =
    ignore (B.Driver.build ?unit_cache root);
    let samples = ref [] and resolved = ref 0 in
    for _ = 0 to options.runs do
      toggle ();
      let ms, r = timed_build ?unit_cache root in
      resolved := r.B.Driver.b_stats.B.Driver.bs_unit_misses;
      samples := ms :: !samples
    done;
    (median_ms !samples, !resolved)
  in
  let unit_ms, unit_resolved = warm () in
  let pkg_ms, pkg_resolved = warm ~unit_cache:B.Driver.no_unit_cache () in
  (* drop the warmup sample taken before the loop counted from 0 *)
  let cold_ms = median_ms (List.tl !cold_samples) in
  Printf.printf
    "  %-10s units %-3d cold %8.2f ms   pkg-warm %8.2f ms (%d units)   \
     unit-warm %8.2f ms (%d unit)\n\
     %!"
    sub.sub_name !units cold_ms pkg_ms pkg_resolved unit_ms unit_resolved;
  ( sub.sub_name,
    Json.Obj
      [
        ("units", Json.Int !units);
        ("cold_ms", Json.Float cold_ms);
        ("pkg_warm_ms", Json.Float pkg_ms);
        ("pkg_warm_units_resolved", Json.Int pkg_resolved);
        ("unit_warm_ms", Json.Float unit_ms);
        ("unit_warm_units_resolved", Json.Int unit_resolved);
      ] )

(* ---------------------------------------------------------------- *)
(* Intra-package parallel scaling                                    *)
(* ---------------------------------------------------------------- *)

(** [n] independent slice-heavy functions: one package whose call graph
    is a wide DAG, so the unit scheduler can keep every worker busy. *)
let wide_src ?(stmts = 24) n =
  let b = Buffer.create (n * 600) in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "func w%d(n int) int {\n" i);
    Buffer.add_string b "\ta0 := make([]int, n)\n";
    for j = 1 to stmts do
      Buffer.add_string b
        (Printf.sprintf "\ta%d := append(a%d, %d)\n" j (j - 1) j)
    done;
    Buffer.add_string b
      (Printf.sprintf
         "\ts := 0\n\tfor i := range a%d {\n\t\ts = s + a%d[i]\n\t}\n" stmts
         stmts);
    Buffer.add_string b "\treturn s\n}\n"
  done;
  Buffer.add_string b "func main() {\n\ttotal := 0\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "\ttotal = total + w%d(8)\n" i)
  done;
  Buffer.add_string b "\tprintln(total)\n}\n";
  Buffer.contents b

let measure_parallel ~options () =
  let nfuncs = 64 in
  let root = make_tree [ ("main.go", wide_src nfuncs) ] in
  let at_jobs jobs =
    ignore (B.Driver.build ~jobs ~force:true root);
    let samples = ref [] in
    for _ = 1 to options.runs do
      Gc.major ();
      let t0 = Unix.gettimeofday () in
      ignore (B.Driver.build ~jobs ~force:true root);
      samples := ((Unix.gettimeofday () -. t0) *. 1000.0) :: !samples
    done;
    median_ms !samples
  in
  let per_jobs = List.map (fun j -> (j, at_jobs j)) [ 1; 2; 4 ] in
  let base = List.assoc 1 per_jobs in
  let cores = Domain.recommended_domain_count () in
  List.iter
    (fun (j, ms) ->
      Printf.printf
        "  walkall scaling: jobs %d  %8.2f ms  (%.2fx, %d core host)\n%!" j
        ms (base /. ms) cores)
    per_jobs;
  Json.Obj
    [
      ("funcs", Json.Int nfuncs);
      ("host_cores", Json.Int cores);
      ( "force_build_ms_by_jobs",
        Json.Obj
          (List.map
             (fun (j, ms) -> (string_of_int j, Json.Float ms))
             per_jobs) );
    ]

(* ---------------------------------------------------------------- *)
(* Entry points                                                      *)
(* ---------------------------------------------------------------- *)

(** The measurements as the ["incremental"] JSON object. *)
let measure ~options () : Json.t =
  (* wide64: the 64-function DAG — large enough that re-solving one
     unit instead of 65 dominates the cache's fixed I/O cost *)
  let wide64 =
    let src = wide_src 64 in
    { sub_name = "wide64"; files = [ ("main.go", src) ]; edit = ("main.go", "w32") }
  in
  let subjects =
    List.map (subject_of_workload ~options) W.all
    @ [ multipkg_subject; wide64 ]
  in
  let rows = List.map (measure_subject ~options) subjects in
  let parallel = measure_parallel ~options () in
  Json.Obj
    [ ("subjects", Json.Obj rows); ("parallel_walkall", parallel) ]

let run ~options () =
  heading "Incremental rebuild latency (cold / package-warm / unit-warm)";
  ignore (measure ~options ())
