(** Load generation against a live daemon: where saturation is, what
    admission control does past it, and what a warm resident cache buys
    under concurrency.

    Three experiments over one in-process daemon (a deliberately low
    shed watermark so the experiment reaches the admission-control
    regime quickly):

    - {e rate sweep}: open-loop Poisson arrivals at 0.5x, 1x and 2x the
      measured closed-loop capacity.  Below saturation everything is
      served; past it the daemon answers [overloaded] immediately
      instead of queueing without bound — offered load rises, p99 of the
      {e served} requests stays in the same regime, and the shed count
      absorbs the difference.

    - {e closed-loop client sweep}: 1..8 clients each keeping one
      request in flight — throughput scaling and the latency cost of
      concurrency.

    - {e warm vs cold}: the same closed-loop load against a fresh daemon
      (every distinct source pays its compile on first sight) and again
      on the now-resident cache.

    Every run also digest-checks response payloads across clients — the
    harness's consistency verdict — so "the daemon under load serves the
    same bytes as a lone client" is asserted, not assumed.

    [measure ~options ()] returns the machine-readable section embedded
    in [BENCH_gofree.json] under ["load"]; [run ~options ()] prints the
    tables. *)

module Json = Gofree_obs.Json
module Server = Gofree_server.Server
module Harness = Gofree_load.Harness
module Schedule = Gofree_load.Schedule

(* Load points are about server behavior, not workload size: cap the
   per-request cost so the sweep finds the daemon's limits, not the
   interpreter's. *)
let load_scale ~(options : Bench_common.options) = max 1 (min options.scale 25)

let shed_watermark = 16

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-load-bench-%d-%d.sock" (Unix.getpid ()) !n)

let ok_exn = function
  | Ok v -> v
  | Error m -> failwith ("load harness: " ^ m)

(* ---- report digestion ---- *)

type point = {
  p_label : string;
  p_offered : int;
  p_offered_rps : float;
  p_ok : int;
  p_achieved_rps : float;
  p_shed : int;
  p_timed_out : int;
  p_errors : int;
  p_dropped : int;
  p_p50_ms : float;
  p_p99_ms : float;
  p_identical : bool;
  p_slo_ok : bool;
}

let point_of_report ~label (r : Json.t) : point =
  let offered = Json.get "offered" r in
  let achieved = Json.get "achieved" r in
  let lat = Json.get "all" (Json.get "latency_ms" r) in
  let pct name =
    match Json.member name lat with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.0
  in
  {
    p_label = label;
    p_offered = Json.get_int "requests" offered;
    p_offered_rps = Json.get_float "rps" offered;
    p_ok = Json.get_int "ok" achieved;
    p_achieved_rps = Json.get_float "rps" achieved;
    p_shed = Json.get_int "shed" achieved;
    p_timed_out = Json.get_int "timed_out" achieved;
    p_errors = Json.get_int "errors" achieved;
    p_dropped = Json.get_int "dropped" achieved;
    p_p50_ms = pct "p50_ms";
    p_p99_ms = pct "p99_ms";
    p_identical =
      Json.member "outputs_identical" (Json.get "consistency" r)
      = Some (Json.Bool true);
    p_slo_ok = Harness.slo_ok r;
  }

let point_json (p : point) : Json.t =
  Json.Obj
    [
      ("label", Json.Str p.p_label);
      ("offered_requests", Json.Int p.p_offered);
      ("offered_rps", Json.Float p.p_offered_rps);
      ("ok", Json.Int p.p_ok);
      ("achieved_rps", Json.Float p.p_achieved_rps);
      ("shed", Json.Int p.p_shed);
      ("timed_out", Json.Int p.p_timed_out);
      ("errors", Json.Int p.p_errors);
      ("dropped", Json.Int p.p_dropped);
      ("p50_ms", Json.Float p.p_p50_ms);
      ("p99_ms", Json.Float p.p_p99_ms);
      ("outputs_identical", Json.Bool p.p_identical);
      ("slo_ok", Json.Bool p.p_slo_ok);
    ]

(* ---- the measurement campaign ---- *)

type campaign = {
  c_scale : int;
  c_seed : int;
  c_duration_s : float;
  c_capacity_rps : float;  (** closed-loop achieved, 4 clients *)
  c_rate_sweep : point list;
  c_closed_loop : point list;
  c_cold : point;
  c_warm : point;
}

let base_cfg ~socket ~scale ~seed ~duration_s =
  {
    (Harness.default_config ~socket) with
    Harness.duration_s;
    scale;
    seed;
  }

let run_point ~socket ~scale ~seed ~duration_s ~label ~clients ~arrival ()
    : point =
  let cfg =
    {
      (base_cfg ~socket ~scale ~seed ~duration_s) with
      Harness.clients;
      arrival;
    }
  in
  point_of_report ~label (ok_exn (Harness.run cfg))

let measure_campaign ~(options : Bench_common.options) : campaign =
  let scale = load_scale ~options in
  let seed = options.seed in
  let duration_s = 1.2 in
  (* -- warm vs cold: fresh daemon, then its resident cache -- *)
  let socket = fresh_socket () in
  let t = Server.start ~shed_watermark ~socket () in
  let cold, warm =
    Fun.protect
      ~finally:(fun () -> Server.stop t)
      (fun () ->
        let go label seed =
          run_point ~socket ~scale ~seed ~duration_s ~label ~clients:4
            ~arrival:Schedule.Closed ()
        in
        let cold = go "cold" seed in
        (cold, go "warm" (seed + 1)))
  in
  (* -- one long-lived daemon for the sweeps, pre-warmed -- *)
  let socket = fresh_socket () in
  let t = Server.start ~shed_watermark ~socket () in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      ignore
        (run_point ~socket ~scale ~seed ~duration_s:0.6 ~label:"warmup"
           ~clients:4 ~arrival:Schedule.Closed ());
      (* closed-loop client sweep; the 4-client point doubles as the
         capacity estimate for the rate sweep *)
      let closed_loop =
        List.map
          (fun clients ->
            run_point ~socket ~scale ~seed:(seed + clients) ~duration_s
              ~label:(Printf.sprintf "%d clients" clients)
              ~clients ~arrival:Schedule.Closed ())
          [ 1; 2; 4; 8 ]
      in
      let capacity_rps =
        match List.nth_opt closed_loop 2 with
        | Some p when p.p_achieved_rps > 0.0 -> p.p_achieved_rps
        | _ -> 50.0
      in
      let rate_sweep =
        List.map
          (fun mult ->
            let total = capacity_rps *. mult in
            let clients = 4 in
            let per_client = Harness.per_client_rate ~clients total in
            run_point ~socket ~scale ~seed:(seed + 100) ~duration_s:1.5
              ~label:(Printf.sprintf "%.1fx" mult)
              ~clients
              ~arrival:(Schedule.Poisson per_client) ())
          [ 0.5; 1.0; 2.0 ]
      in
      {
        c_scale = scale;
        c_seed = seed;
        c_duration_s = duration_s;
        c_capacity_rps = capacity_rps;
        c_rate_sweep = rate_sweep;
        c_closed_loop = closed_loop;
        c_cold = cold;
        c_warm = warm;
      })

let campaign_json (c : campaign) : Json.t =
  Json.Obj
    [
      ("scale_pct", Json.Int c.c_scale);
      ("seed", Json.Int c.c_seed);
      ("duration_s", Json.Float c.c_duration_s);
      ("shed_watermark", Json.Int shed_watermark);
      ("capacity_rps", Json.Float c.c_capacity_rps);
      ("rate_sweep", Json.List (List.map point_json c.c_rate_sweep));
      ("closed_loop", Json.List (List.map point_json c.c_closed_loop));
      ("cold", point_json c.c_cold);
      ("warm", point_json c.c_warm);
    ]

(** The ["load"] section of [BENCH_gofree.json]. *)
let measure ~options () : Json.t = campaign_json (measure_campaign ~options)

(* ---- human-readable run ---- *)

let print_points title points =
  Bench_common.heading title;
  Printf.printf "  %-10s %8s %8s %6s %6s %5s %9s %9s %5s\n" "point"
    "offered" "ok/s" "shed" "t/o" "err" "p50ms" "p99ms" "same";
  List.iter
    (fun p ->
      Printf.printf "  %-10s %8d %8.1f %6d %6d %5d %9.1f %9.1f %5b\n"
        p.p_label p.p_offered p.p_achieved_rps p.p_shed p.p_timed_out
        p.p_errors p.p_p50_ms p.p_p99_ms p.p_identical)
    points;
  print_newline ()

let run ~options () =
  let c = measure_campaign ~options in
  Printf.printf
    "load harness: scale %d%%, seed %d, shed watermark %d, capacity \
     ~%.1f req/s (closed loop, 4 clients)\n\n"
    c.c_scale c.c_seed shed_watermark c.c_capacity_rps;
  print_points "load: open-loop rate sweep (Poisson, 4 clients)"
    c.c_rate_sweep;
  print_points "load: closed-loop client sweep" c.c_closed_loop;
  print_points "load: cold daemon vs resident cache (closed loop, 4 clients)"
    [ c.c_cold; c.c_warm ];
  let over =
    List.exists
      (fun p -> p.p_label = "2.0x" && p.p_shed > 0 && p.p_errors = 0)
      c.c_rate_sweep
  in
  Printf.printf
    "  overload handled by shedding (2x point sheds, zero hard errors): %b\n"
    over;
  let all_identical =
    List.for_all
      (fun p -> p.p_identical)
      (c.c_cold :: c.c_warm :: (c.c_rate_sweep @ c.c_closed_loop))
  in
  Printf.printf "  outputs byte-identical across every point: %b\n\n"
    all_identical;
  if not all_identical then failwith "load changed response payloads"
