#!/usr/bin/env python3
"""CI bench smoke gate.

Compares a freshly produced BENCH_gofree.json against the committed
reduced-scale baseline (bench/baseline_smoke.json).  The baseline holds
one section per execution engine ({"engines": {"closure": ..,
"bytecode": ..}}); the current document's "engine" field selects which
section it is compared against, so CI can gate both engines from one
baseline file.

Checks:

  * wall_ns may not regress by more than --tolerance (default 20%) on
    any workload/setting pair — catches interpreter/allocator slowdowns;
  * the geometric mean of the wall_ns ratios across every
    workload/setting pair may not regress by more than --geomean
    (default 10%) — catches broad slowdowns that stay under the
    per-pair tolerance everywhere;
  * every allocator-visible metric (alloced_bytes, freed_bytes,
    gc_cycles, maxheap_bytes, free_ratio) must match the baseline
    EXACTLY — the simulated runtime is deterministic under a fixed
    seed/scale, so any drift means the semantics changed.

Exit status 0 = pass, 1 = regression/mismatch, 2 = bad input.
"""

import argparse
import json
import math
import sys

EXACT_KEYS = ("alloced_bytes", "freed_bytes", "gc_cycles",
              "maxheap_bytes", "free_ratio")


def load(path, schema):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if schema and doc.get("schema") != schema:
        print(f"error: {path}: unexpected schema {doc.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="max allowed per-pair wall_ns regression (fraction)")
    ap.add_argument("--geomean", type=float, default=0.10,
                    help="max allowed geomean wall_ns regression (fraction)")
    args = ap.parse_args()

    baselines = load(args.baseline, None)
    cur = load(args.current, "gofree-bench-v1")

    engine = cur.get("engine", "closure")
    if "engines" not in baselines:
        print(f"error: {args.baseline}: no \"engines\" sections",
              file=sys.stderr)
        sys.exit(2)
    base = baselines["engines"].get(engine)
    if base is None:
        print(f"error: {args.baseline}: no baseline for engine "
              f"{engine!r} (has: {', '.join(sorted(baselines['engines']))})",
              file=sys.stderr)
        sys.exit(2)
    if base.get("schema") != "gofree-bench-v1":
        print(f"error: {args.baseline}[{engine}]: unexpected schema "
              f"{base.get('schema')!r}", file=sys.stderr)
        sys.exit(2)

    for key in ("runs", "scale_pct", "seed", "engine"):
        if base.get(key) != cur.get(key):
            print(f"error: {key} differs (baseline {base.get(key)}, "
                  f"current {cur.get(key)}) — not comparable", file=sys.stderr)
            sys.exit(2)

    base_ws = {w["name"]: w for w in base["workloads"]}
    failures = 0
    log_ratios = []
    for w in cur["workloads"]:
        bw = base_ws.pop(w["name"], None)
        if bw is None:
            print(f"FAIL {w['name']}: missing from baseline")
            failures += 1
            continue
        for setting, cs in w["settings"].items():
            bs = bw["settings"].get(setting)
            if bs is None:
                print(f"FAIL {w['name']}/{setting}: missing from baseline")
                failures += 1
                continue
            ratio = cs["wall_ns"] / bs["wall_ns"] if bs["wall_ns"] else 0.0
            if ratio > 0.0:
                log_ratios.append(math.log(ratio))
            if ratio > 1.0 + args.tolerance:
                print(f"FAIL {w['name']}/{setting}: wall_ns {bs['wall_ns']:.0f}"
                      f" -> {cs['wall_ns']:.0f} (+{(ratio - 1) * 100:.1f}% > "
                      f"{args.tolerance * 100:.0f}%)")
                failures += 1
            else:
                print(f"ok   {w['name']}/{setting}: wall_ns "
                      f"{(ratio - 1) * 100:+.1f}%")
            for k in EXACT_KEYS:
                if cs[k] != bs[k]:
                    print(f"FAIL {w['name']}/{setting}: {k} changed "
                          f"{bs[k]} -> {cs[k]} (must be exact)")
                    failures += 1
    for name in base_ws:
        print(f"FAIL {name}: present in baseline, missing from current run")
        failures += 1

    if log_ratios:
        geomean = math.exp(sum(log_ratios) / len(log_ratios))
        if geomean > 1.0 + args.geomean:
            print(f"FAIL geomean wall_ns ratio {geomean:.3f} "
                  f"(> +{args.geomean * 100:.0f}%)")
            failures += 1
        else:
            print(f"ok   geomean wall_ns ratio {geomean:.3f} "
                  f"({(geomean - 1) * 100:+.1f}%)")

    if failures:
        print(f"{failures} check(s) failed")
        sys.exit(1)
    print(f"bench smoke passed ({engine} engine)")


if __name__ == "__main__":
    main()
