#!/usr/bin/env python3
"""CI bench smoke gate.

Compares a freshly produced BENCH_gofree.json against the committed
reduced-scale baseline (bench/baseline_smoke.json):

  * wall_ns may not regress by more than --tolerance (default 20%) on
    any workload/setting pair — catches interpreter/allocator slowdowns;
  * every allocator-visible metric (alloced_bytes, freed_bytes,
    gc_cycles, maxheap_bytes, free_ratio) must match the baseline
    EXACTLY — the simulated runtime is deterministic under a fixed
    seed/scale, so any drift means the semantics changed.

Exit status 0 = pass, 1 = regression/mismatch, 2 = bad input.
"""

import argparse
import json
import sys

EXACT_KEYS = ("alloced_bytes", "freed_bytes", "gc_cycles",
              "maxheap_bytes", "free_ratio")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "gofree-bench-v1":
        print(f"error: {path}: unexpected schema {doc.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="max allowed wall_ns regression (fraction)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    for key in ("runs", "scale_pct", "seed"):
        if base.get(key) != cur.get(key):
            print(f"error: {key} differs (baseline {base.get(key)}, "
                  f"current {cur.get(key)}) — not comparable", file=sys.stderr)
            sys.exit(2)

    base_ws = {w["name"]: w for w in base["workloads"]}
    failures = 0
    for w in cur["workloads"]:
        bw = base_ws.pop(w["name"], None)
        if bw is None:
            print(f"FAIL {w['name']}: missing from baseline")
            failures += 1
            continue
        for setting, cs in w["settings"].items():
            bs = bw["settings"].get(setting)
            if bs is None:
                print(f"FAIL {w['name']}/{setting}: missing from baseline")
                failures += 1
                continue
            ratio = cs["wall_ns"] / bs["wall_ns"] if bs["wall_ns"] else 0.0
            if ratio > 1.0 + args.tolerance:
                print(f"FAIL {w['name']}/{setting}: wall_ns {bs['wall_ns']:.0f}"
                      f" -> {cs['wall_ns']:.0f} (+{(ratio - 1) * 100:.1f}% > "
                      f"{args.tolerance * 100:.0f}%)")
                failures += 1
            else:
                print(f"ok   {w['name']}/{setting}: wall_ns "
                      f"{(ratio - 1) * 100:+.1f}%")
            for k in EXACT_KEYS:
                if cs[k] != bs[k]:
                    print(f"FAIL {w['name']}/{setting}: {k} changed "
                          f"{bs[k]} -> {cs[k]} (must be exact)")
                    failures += 1
    for name in base_ws:
        print(f"FAIL {name}: present in baseline, missing from current run")
        failures += 1

    if failures:
        print(f"{failures} check(s) failed")
        sys.exit(1)
    print("bench smoke passed")


if __name__ == "__main__":
    main()
