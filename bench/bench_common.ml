(** Shared infrastructure for the evaluation harness: the three run
    settings of §6.4, repeated measurement, and ratio/significance rows.

    Defaults are scaled down from the paper's testbed (99 runs on a
    96-core Xeon) so the full harness finishes in minutes; pass
    [--runs 99 --scale 10] for a paper-sized campaign. *)

module Rt = Gofree_runtime

type setting = Go | Gofree | Go_gcoff

let setting_name = function
  | Go -> "Go"
  | Gofree -> "GoFree"
  | Go_gcoff -> "Go-GCOff"

type options = {
  runs : int;  (** repetitions per (program, setting) *)
  scale : int;  (** workload size multiplier, percent (100 = default) *)
  seed : int;
  engine : Gofree_interp.Interp.engine;
      (** execution engine under measurement; metrics are identical
          across engines, wall time is what differs *)
}

let default_options =
  {
    runs = 7;
    scale = 100;
    seed = 42;
    engine = Gofree_interp.Interp.Eng_bytecode;
  }

let engine_name = function
  | Gofree_interp.Interp.Eng_reference -> "reference"
  | Gofree_interp.Interp.Eng_closure -> "closure"
  | Gofree_interp.Interp.Eng_bytecode -> "bytecode"

type run_result = {
  r_time_ms : float;
  r_gc_time_ms : float;
  r_gcs : float;
  r_alloced : float;
  r_freed : float;
  r_maxheap : float;
  r_metrics : Rt.Metrics.t;
  r_output : string;
}

let run_once ?min_heap ~options ~setting source : run_result =
  (* settle the host OCaml GC so its pauses don't pollute the sample *)
  Gc.major ();
  let gofree_config =
    match setting with
    | Go | Go_gcoff -> Gofree_core.Config.go
    | Gofree -> Gofree_core.Config.gofree
  in
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          gc_disabled = (setting = Go_gcoff);
          grow_map_free_old = (setting = Gofree);
          (* a small first-GC threshold keeps the GC pressure of the
             paper's much larger subjects at our scaled-down sizes *)
          min_heap = Option.value min_heap ~default:(96 * 1024);
        };
      seed = Int64.of_int options.seed;
      engine = options.engine;
    }
  in
  let r =
    Gofree_interp.Runner.compile_and_run ~gofree_config ~run_config source
  in
  let m = r.Gofree_interp.Runner.metrics in
  {
    r_time_ms = Int64.to_float r.Gofree_interp.Runner.wall_ns /. 1e6;
    r_gc_time_ms = Int64.to_float m.Rt.Metrics.gc_time_ns /. 1e6;
    r_gcs = float_of_int m.Rt.Metrics.gc_cycles;
    r_alloced = float_of_int m.Rt.Metrics.alloced_bytes;
    r_freed = float_of_int m.Rt.Metrics.freed_bytes;
    r_maxheap = float_of_int m.Rt.Metrics.max_heap_pages;
    r_metrics = m;
    r_output = r.Gofree_interp.Runner.output;
  }

(** [runs] repetitions; one warmup run is discarded. *)
let run_many ?min_heap ~options ~setting source : run_result array =
  ignore (run_once ?min_heap ~options ~setting source);
  Array.init options.runs (fun _ -> run_once ?min_heap ~options ~setting source)

(** Repetitions of several settings, interleaved round-robin so host
    drift (cache state, allocator fragmentation, thermal) biases no
    setting — the order sensitivity the paper's 99-run design also
    guards against.  One warmup run per setting is discarded. *)
let run_interleaved ?min_heap ~options ~settings source :
    (setting * run_result array) list =
  List.iter
    (fun setting -> ignore (run_once ?min_heap ~options ~setting source))
    settings;
  let acc = List.map (fun s -> (s, ref [])) settings in
  for _ = 1 to options.runs do
    List.iter
      (fun (setting, cell) ->
        cell := run_once ?min_heap ~options ~setting source :: !cell)
      acc
  done;
  List.map (fun (s, cell) -> (s, Array.of_list (List.rev !cell))) acc

let scaled_size ~options (w : Gofree_workloads.Workloads.t) =
  max 10
    (w.Gofree_workloads.Workloads.w_default_size * options.scale / 100)

(** Ratio, its stdev and Welch significance for one metric across two
    sample sets — the triple the paper's Table 7 prints per metric. *)
let ratio_cell ~(treatment : float array) ~(control : float array) =
  let open Gofree_stats in
  let ratio = Stats.ratio ~treatment ~control in
  let stdev = Stats.ratio_stdev ~treatment ~control in
  let test = Ttest.welch treatment control in
  (ratio, stdev, test.Ttest.p_value)

let metric f results = Array.map f results

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n\n" title bar
