(** Multi-domain scaling: the goroutine fan-out workload under
    [--domains 1/2/4], with wall-time speedup over the single-domain
    runtime, per-run steal/spawn counts from the scheduler telemetry,
    and the interleaving-independent allocator totals that must not move
    across domain counts.

    The Table 6 proxies have sequential mains, so only the fan-out
    workload exercises the work-stealing scheduler; it is also excluded
    from the committed single-domain baselines, which keeps this section
    additive.  Run with [dune exec bench/main.exe -- --only parallel]. *)

module W = Gofree_workloads.Workloads
module Json = Gofree_obs.Json
module Reg = Gofree_obs.Registry
module Rt = Gofree_runtime
module Stats = Gofree_stats.Stats
open Bench_common

let domain_counts = [ 1; 2; 4 ]

let run_domains ~options ~domains source =
  (* settle the host OCaml GC so its pauses don't pollute the sample *)
  Gc.major ();
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        { Rt.Heap.default_config with min_heap = 96 * 1024 };
      seed = Int64.of_int options.seed;
      engine = options.engine;
      domains;
    }
  in
  Gofree_interp.Runner.compile_and_run ~run_config source

let counter name = Reg.counter_value (Reg.counter Reg.runtime name)

type row = {
  p_domains : int;
  p_wall_ns : float;  (** median *)
  p_gcs : int;
  p_alloced : int;
  p_tcfree_calls : int;
  p_steals : float;  (** mean per run *)
  p_spawns : float;
  p_yields : float;
}

let measure_rows ~options source : row list =
  Reg.acquire_runtime ();
  Fun.protect ~finally:Reg.release_runtime @@ fun () ->
  List.map
    (fun nd ->
      ignore (run_domains ~options ~domains:nd source);
      let steals0 = counter "gofree_sched_steals_total" in
      let spawns0 = counter "gofree_sched_spawns_total" in
      let yields0 = counter "gofree_sched_yields_total" in
      let n = max 1 options.runs in
      let samples =
        Array.init n (fun _ -> run_domains ~options ~domains:nd source)
      in
      let wall =
        Stats.median
          (Array.map
             (fun r -> Int64.to_float r.Gofree_interp.Runner.wall_ns)
             samples)
      in
      let m = samples.(n - 1).Gofree_interp.Runner.metrics in
      let per_run c0 c = float_of_int (c - c0) /. float_of_int n in
      {
        p_domains = nd;
        p_wall_ns = wall;
        p_gcs = m.Rt.Metrics.gc_cycles;
        p_alloced = m.Rt.Metrics.alloced_bytes;
        p_tcfree_calls = m.Rt.Metrics.tcfree_calls;
        p_steals = per_run steals0 (counter "gofree_sched_steals_total");
        p_spawns = per_run spawns0 (counter "gofree_sched_spawns_total");
        p_yields = per_run yields0 (counter "gofree_sched_yields_total");
      })
    domain_counts

let measure ~options () : Json.t =
  let w = W.fanout in
  let size = scaled_size ~options w in
  let source = W.source_of ~size w in
  let seq = run_domains ~options ~domains:0 source in
  let rows = measure_rows ~options source in
  let base_wall =
    match rows with r :: _ -> r.p_wall_ns | [] -> 0.0
  in
  Json.Obj
    [
      ("workload", Json.Str w.W.w_name);
      ("size", Json.Int size);
      ( "sequential_wall_ns",
        Json.Float (Int64.to_float seq.Gofree_interp.Runner.wall_ns) );
      ( "scaling",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("domains", Json.Int r.p_domains);
                   ("wall_ns", Json.Float r.p_wall_ns);
                   ( "speedup_vs_1",
                     Json.Float
                       (if r.p_wall_ns > 0.0 then base_wall /. r.p_wall_ns
                        else 0.0) );
                   ("gc_cycles", Json.Int r.p_gcs);
                   ("alloced_bytes", Json.Int r.p_alloced);
                   ("tcfree_calls", Json.Int r.p_tcfree_calls);
                   ("steals_per_run", Json.Float r.p_steals);
                   ("spawns_per_run", Json.Float r.p_spawns);
                   ("yields_per_run", Json.Float r.p_yields);
                 ])
             rows) );
    ]

let run ~options () =
  heading "Multi-domain scaling (fan-out workload, median wall ms)";
  let w = W.fanout in
  let size = scaled_size ~options w in
  let source = W.source_of ~size w in
  let seq = run_domains ~options ~domains:0 source in
  let rows = measure_rows ~options source in
  let base_wall =
    match rows with r :: _ -> r.p_wall_ns | [] -> 0.0
  in
  Printf.printf "  %-8s %12s %9s %8s %10s %10s\n" "domains" "wall"
    "speedup" "GCs" "steals" "spawns";
  Printf.printf "  %-8s %10.2fms %8s %8d %10s %10s\n" "seq"
    (Int64.to_float seq.Gofree_interp.Runner.wall_ns /. 1e6)
    "-" seq.Gofree_interp.Runner.metrics.Rt.Metrics.gc_cycles "-" "-";
  List.iter
    (fun r ->
      Printf.printf "  %-8d %10.2fms %7.2fx %8d %10.1f %10.1f\n" r.p_domains
        (r.p_wall_ns /. 1e6)
        (if r.p_wall_ns > 0.0 then base_wall /. r.p_wall_ns else 0.0)
        r.p_gcs r.p_steals r.p_spawns)
    rows;
  (* hard gate, restated here so a bench run also exercises it: one
     domain replays the sequential schedule byte for byte *)
  let par1 = run_domains ~options ~domains:1 source in
  if
    not
      (String.equal seq.Gofree_interp.Runner.output
         par1.Gofree_interp.Runner.output)
  then failwith "--domains 1 output diverged from sequential";
  Printf.printf "\n  --domains 1 output identical to sequential: yes\n"
