(** Precision-mode evaluation: every workload re-run under each mode of
    the redesigned [Config] precision surface — baseline
    (field-insensitive, scope-exit placement), field-sensitive,
    last-use, and precise (both upgrades) — reporting the free ratio, GC
    cycles and tcfree insertion counts per mode.

    Allocator-visible metrics are deterministic under a fixed seed and
    identical across execution engines, so one run per (workload, mode)
    suffices; wall time is deliberately not reported here (the engine
    experiments own it).

    [measure ~options ()] is the ["precision"] section of
    [BENCH_gofree.json].  [run ~options ()] prints the table and writes
    [precision_smoke.json], the document CI compares against the
    committed [bench/precision_smoke.json] with
    [bench/check_precision.py]. *)

module W = Gofree_workloads.Workloads
module C = Gofree_core.Config
module Json = Gofree_obs.Json
module Rt = Gofree_runtime
open Bench_common

let modes =
  [
    ("baseline", C.gofree);
    ("field-sensitive", C.field_sensitive);
    ("last-use", C.last_use);
    ("precise", C.precise);
  ]

type mode_result = {
  p_free_ratio : float;
  p_gc_cycles : int;
  p_freed_bytes : int;
  p_alloced_bytes : int;
  p_insertions : int;  (** total inserted tcfrees *)
  p_field_insertions : int;  (** of which field-projected ([b.field]) *)
}

(* Same harness as the GoFree setting of {!Bench_common.run_once}
   (grow-time map sweep on, small first-GC threshold), but under an
   arbitrary precision config. *)
let run_mode ~options ~config source : mode_result =
  Gc.major ();
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          grow_map_free_old = true;
          min_heap = 96 * 1024;
        };
      seed = Int64.of_int options.seed;
      engine = options.engine;
    }
  in
  let r =
    Gofree_interp.Runner.compile_and_run ~gofree_config:config ~run_config
      source
  in
  let m = r.Gofree_interp.Runner.metrics in
  let compiled = Gofree_core.Pipeline.compile ~config source in
  let inserted = compiled.Gofree_core.Pipeline.c_inserted in
  let fields =
    List.filter
      (fun i -> i.Gofree_core.Instrument.ins_field <> None)
      inserted
  in
  {
    p_free_ratio = Rt.Metrics.free_ratio m;
    p_gc_cycles = m.Rt.Metrics.gc_cycles;
    p_freed_bytes = m.Rt.Metrics.freed_bytes;
    p_alloced_bytes = m.Rt.Metrics.alloced_bytes;
    p_insertions = List.length inserted;
    p_field_insertions = List.length fields;
  }

let mode_json (r : mode_result) : Json.t =
  Json.Obj
    [
      ("free_ratio", Json.Float r.p_free_ratio);
      ("gc_cycles", Json.Int r.p_gc_cycles);
      ("freed_bytes", Json.Int r.p_freed_bytes);
      ("alloced_bytes", Json.Int r.p_alloced_bytes);
      ("insertions", Json.Int r.p_insertions);
      ("field_insertions", Json.Int r.p_field_insertions);
    ]

let workload_results ~options (w : W.t) :
    int * (string * mode_result) list =
  let size = scaled_size ~options w in
  let source = W.source_of ~size w in
  ( size,
    List.map
      (fun (name, config) -> (name, run_mode ~options ~config source))
      modes )

let workload_json (w : W.t) size (results : (string * mode_result) list) :
    Json.t =
  Json.Obj
    [
      ("name", Json.Str w.W.w_name);
      ("size", Json.Int size);
      ( "modes",
        Json.Obj (List.map (fun (n, r) -> (n, mode_json r)) results) );
    ]

(** The ["precision"] section of [BENCH_gofree.json]. *)
let measure ~options () : Json.t =
  Json.Obj
    [
      ("modes", Json.List (List.map (fun (n, _) -> Json.Str n) modes));
      ( "workloads",
        Json.List
          (List.map
             (fun w ->
               let size, results = workload_results ~options w in
               workload_json w size results)
             W.all) );
    ]

let run ~options () =
  heading "Precision modes (free ratio, GC cycles, insertions per mode)";
  Printf.printf "  %-12s %-16s %10s %6s %6s %6s\n" "workload" "mode"
    "free" "GCs" "ins" "field";
  let workloads =
    List.map
      (fun (w : W.t) ->
        let size, results = workload_results ~options w in
        List.iter
          (fun (name, r) ->
            Printf.printf "  %-12s %-16s %10.3f %6d %6d %6d\n" w.W.w_name
              name r.p_free_ratio r.p_gc_cycles r.p_insertions
              r.p_field_insertions)
          results;
        workload_json w size results)
      W.all
  in
  let doc =
    Json.Obj
      [
        Gofree_obs.Schema.(field Precision);
        ("scale_pct", Json.Int options.scale);
        ("seed", Json.Int options.seed);
        ("modes", Json.List (List.map (fun (n, _) -> Json.Str n) modes));
        ("workloads", Json.List workloads);
      ]
  in
  let oc = open_out "precision_smoke.json" in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "  wrote precision_smoke.json (%d workloads x %d modes)\n"
    (List.length workloads) (List.length modes)
