#!/usr/bin/env python3
"""CI precision smoke gate.

Compares a freshly produced precision_smoke.json (one run per
workload/precision-mode pair, reduced scale) against the committed
baseline bench/precision_smoke.json.

The simulated runtime is deterministic under a fixed seed/scale and its
allocator-visible metrics are engine-independent, so every metric must
match the baseline EXACTLY — in particular any free-ratio drift (an
analysis regression OR an unvetted improvement) fails the gate and asks
for a deliberate baseline update.

Two in-document invariants are also enforced on the current run:

  * refined modes never insert fewer tcfrees than baseline mode
    (precision only adds free sites, it never removes them);
  * at least two workloads show a refined mode strictly improving the
    free ratio over baseline mode — the precision surface must keep
    earning its keep at smoke scale.

Exit status 0 = pass, 1 = mismatch/invariant violation, 2 = bad input.
"""

import json
import sys

SCHEMA = "gofree-precision-v1"
METRIC_KEYS = ("free_ratio", "gc_cycles", "freed_bytes", "alloced_bytes",
               "insertions", "field_insertions")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: unexpected schema {doc.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    return doc


def by_name(doc):
    return {w["name"]: w for w in doc["workloads"]}


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} baseline current", file=sys.stderr)
        sys.exit(2)
    baseline, current = load(sys.argv[1]), load(sys.argv[2])
    for key in ("scale_pct", "seed"):
        if baseline.get(key) != current.get(key):
            print(f"error: {key} differs (baseline {baseline.get(key)}, "
                  f"current {current.get(key)}); run at baseline settings",
                  file=sys.stderr)
            sys.exit(2)

    failures = []
    cur_workloads = by_name(current)
    for name, base_w in by_name(baseline).items():
        cur_w = cur_workloads.get(name)
        if cur_w is None:
            failures.append(f"{name}: missing from current run")
            continue
        for mode, base_m in base_w["modes"].items():
            cur_m = cur_w["modes"].get(mode)
            if cur_m is None:
                failures.append(f"{name}/{mode}: missing from current run")
                continue
            for key in METRIC_KEYS:
                if base_m[key] != cur_m[key]:
                    failures.append(
                        f"{name}/{mode}: {key} drifted "
                        f"{base_m[key]} -> {cur_m[key]}")

    improved = 0
    for name, w in cur_workloads.items():
        modes = w["modes"]
        base = modes.get("baseline")
        if base is None:
            failures.append(f"{name}: no baseline mode in current run")
            continue
        if any(m["free_ratio"] > base["free_ratio"]
               for mode, m in modes.items() if mode != "baseline"):
            improved += 1
        for mode, m in modes.items():
            if mode != "baseline" and m["insertions"] < base["insertions"]:
                failures.append(
                    f"{name}/{mode}: fewer insertions than baseline "
                    f"({m['insertions']} < {base['insertions']})")
    if improved < 2:
        failures.append(
            f"only {improved} workload(s) improve free ratio in a refined "
            "mode (need >= 2)")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        sys.exit(1)
    print(f"precision smoke OK: {len(by_name(baseline))} workloads x "
          f"{len(baseline.get('modes', []))} modes match baseline, "
          f"{improved} workloads improved by a refined mode")


if __name__ == "__main__":
    main()
