(** Ablations of the design choices DESIGN.md calls out:

    - no-IPA: conservative default tags at every call site — kills the
      cross-function freeing of §4.4;
    - all-targets: also free raw pointers, not only slices and maps —
      quantifies what §6.5's target selection leaves on the table;
    - GrowMapAndFreeOld off: isolates the runtime-only map-growth
      optimization from the compiler-inserted frees. *)

open Bench_common
module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads
module Table = Gofree_stats.Table

let run_variant ~options ~gofree_config ?(grow = true) source =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          grow_map_free_old =
            grow && gofree_config.Gofree_core.Config.insert_tcfree;
        };
      seed = Int64.of_int options.seed;
    }
  in
  (Gofree_interp.Runner.compile_and_run ~gofree_config ~run_config source)
    .Gofree_interp.Runner.metrics

let run ~options () =
  heading "Ablations: free ratio under restricted GoFree variants";
  let table =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right ]
      [ "Project"; "full"; "no-IPA"; "no-growfree"; "all-targets";
        "tcfree count (full)" ]
  in
  List.iter
    (fun (w : W.t) ->
      let source = W.source_of ~size:(scaled_size ~options w) w in
      let fr m = Table.pct1 (Rt.Metrics.free_ratio m) in
      let full = run_variant ~options ~gofree_config:Gofree_core.Config.gofree source in
      let noipa = run_variant ~options ~gofree_config:Gofree_api.Preset.(default |> with_ipa false |> to_config)
          source in
      let nogrow =
        run_variant ~options ~gofree_config:Gofree_core.Config.gofree
          ~grow:false source
      in
      let all =
        run_variant ~options
          ~gofree_config:
            Gofree_api.Preset.(
              default |> with_targets Gofree_core.Config.All_pointers
              |> to_config)
          source
      in
      Table.add_row table
        [
          w.W.w_name; fr full; fr noipa; fr nogrow; fr all;
          string_of_int full.Rt.Metrics.tcfree_success;
        ])
    W.all;
  print_string (Table.render table);
  print_endline
    "\nno-IPA: content tags off (cross-function frees disappear); \
     no-growfree: GrowMapAndFreeOld off (map-growth reclaim disappears); \
     all-targets: raw pointers also freed (the paper's 6.5 decides the \
     extra benefit does not pay for the overhead)."
