(** Execution-engine comparison: the six workloads under the
    closure-compiled engine and the bytecode VM, interleaved, with the
    per-workload wall-time speedup and its geometric mean — the number
    the bytecode engine exists for.  Also asserts that the two engines'
    allocator-visible metrics are identical on every run (the bench
    counterpart of the differential test suite).

    Run with [dune exec bench/main.exe -- --only engines]. *)

module W = Gofree_workloads.Workloads
module Stats = Gofree_stats.Stats
open Bench_common

let fingerprint (r : run_result) =
  Printf.sprintf "%.0f/%.0f/%.0f/%.0f %s" r.r_alloced r.r_freed r.r_gcs
    r.r_maxheap (Digest.to_hex (Digest.string r.r_output))

let run ~options () =
  heading "Execution engines: closure vs bytecode (median wall ms)";
  Printf.printf "  %-12s %12s %12s %9s  %s\n" "workload" "closure"
    "bytecode" "speedup" "metrics";
  let opts e = { options with engine = e } in
  let closure = opts Gofree_interp.Interp.Eng_closure in
  let bytecode = opts Gofree_interp.Interp.Eng_bytecode in
  let speedups =
    List.map
      (fun (w : W.t) ->
        let size = scaled_size ~options w in
        let source = W.source_of ~size w in
        ignore (run_once ~options:closure ~setting:Gofree source);
        ignore (run_once ~options:bytecode ~setting:Gofree source);
        let cl = ref [] and bc = ref [] in
        let cl_words = ref 0.0 and bc_words = ref 0.0 in
        for _ = 1 to options.runs do
          let w0 = Gc.minor_words () in
          cl := run_once ~options:closure ~setting:Gofree source :: !cl;
          let w1 = Gc.minor_words () in
          bc := run_once ~options:bytecode ~setting:Gofree source :: !bc;
          let w2 = Gc.minor_words () in
          cl_words := !cl_words +. w1 -. w0;
          bc_words := !bc_words +. w2 -. w1
        done;
        let cl = Array.of_list !cl and bc = Array.of_list !bc in
        let identical =
          Array.for_all
            (fun r -> fingerprint r = fingerprint cl.(0))
            (Array.append cl bc)
        in
        let med rs = Stats.median (metric (fun r -> r.r_time_ms) rs) in
        let mc = med cl and mb = med bc in
        let speedup = mc /. mb in
        let mw words =
          words /. float_of_int options.runs *. 8.0 /. 1048576.0
        in
        Printf.printf
          "  %-12s %10.2fms %10.2fms %8.2fx  %s (alloc %.0f vs %.0f MB)\n"
          w.W.w_name mc mb speedup
          (if identical then "identical" else "DIVERGED")
          (mw !cl_words) (mw !bc_words);
        if not identical then
          failwith ("engine metrics diverged on workload " ^ w.W.w_name);
        speedup)
      W.all
  in
  let geomean =
    exp
      (List.fold_left (fun acc s -> acc +. log s) 0.0 speedups
      /. float_of_int (List.length speedups))
  in
  Printf.printf "\n  geomean speedup: %.2fx (bytecode over closure)\n"
    geomean
