(** §6.8 robustness: run every workload and a batch of random programs
    with the mock poisoning tcfree — any wrong explicit free becomes a
    detected corruption instead of silent reuse.

    Also runs the deliberately unsound no-back-propagation ablation to
    show the harness has teeth: with GoFree's leaf-to-root Incomplete
    rules turned off, the analysis believes compromised points-to sets
    and the poison detector is expected to catch mis-frees. *)

open Bench_common
module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads

let poison_run ~gofree_config source =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          poison_on_free = true;
          min_heap = 64 * 1024;
          grow_map_free_old = true;
        };
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config ~run_config source

type verdict = Clean | Corrupted of string

let check ~gofree_config source expected_output : verdict =
  match poison_run ~gofree_config source with
  | r ->
    if String.equal r.Gofree_interp.Runner.output expected_output then Clean
    else Corrupted "silent output divergence"
  | exception Gofree_interp.Value.Corruption msg -> Corrupted msg

let run ~options () =
  heading
    "Robustness (paper 6.8): mock tcfree poisons freed memory; wrong \
     frees become detected corruption";
  (* 1. all six workloads *)
  let workload_failures = ref 0 in
  List.iter
    (fun (w : W.t) ->
      let source = W.source_of ~size:(scaled_size ~options w) w in
      let expected = (run_once ~options ~setting:Go source).r_output in
      match check ~gofree_config:Gofree_core.Config.gofree source expected with
      | Clean -> Printf.printf "  %-8s clean\n" w.W.w_name
      | Corrupted msg ->
        incr workload_failures;
        Printf.printf "  %-8s CORRUPTION: %s\n" w.W.w_name msg)
    W.all;
  (* 2. random programs, GoFree full config *)
  let n_random = 40 in
  let random_failures = ref 0 in
  for seed = 1 to n_random do
    let source = Gofree_workloads.Randprog.generate (seed * 7919) in
    let expected =
      (Gofree_interp.Runner.compile_and_run
         ~gofree_config:Gofree_core.Config.go source)
        .Gofree_interp.Runner.output
    in
    match check ~gofree_config:Gofree_core.Config.gofree source expected with
    | Clean -> ()
    | Corrupted msg ->
      incr random_failures;
      Printf.printf "  random seed %d: CORRUPTION: %s\n" seed msg
  done;
  Printf.printf
    "  %d random programs under poison: %d corruptions\n" n_random
    !random_failures;
  Printf.printf
    "GoFree verdict: %s (paper: all official package tests pass under the \
     mock)\n"
    (if !workload_failures + !random_failures = 0 then "PASS — no wrong frees"
     else "FAIL");
  (* 3. the unsound ablation should be caught *)
  heading
    "Negative control: completeness back-propagation disabled (unsound \
     by construction)";
  let caught = ref 0 and total = ref 0 in
  for seed = 1 to n_random do
    let source = Gofree_workloads.Randprog.generate (seed * 104729) in
    let expected =
      (Gofree_interp.Runner.compile_and_run
         ~gofree_config:Gofree_core.Config.go source)
        .Gofree_interp.Runner.output
    in
    incr total;
    match
      check
        ~gofree_config:
          Gofree_api.Preset.(default |> with_backprop false |> to_config)
        source
        expected
    with
    | Clean -> ()
    | Corrupted _ -> incr caught
  done;
  Printf.printf
    "poison harness caught the unsound analysis on %d/%d random programs \
     (any nonzero count shows the methodology detects wrong frees)\n"
    !caught !total
