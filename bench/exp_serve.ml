(** Cold vs warm daemon: what a process-resident cache buys.

    Two comparisons, printed as one table each:

    - {e analyze}: for each of the six paper workloads, a cold in-process
      compile ({!Gofree_api.compile_string}, fresh every time — what a
      one-shot [gofreec analyze] pays) against the daemon serving the
      same source cold (first request, resident miss) and warm (second
      request, resident hit).  The warm number still includes the full
      RPC round-trip — socket, JSON framing, queueing — so it bounds the
      end-to-end latency a client sees, not just the cache lookup.

    - {e build}: the [examples/multipkg] tree (copied to a scratch
      directory), built cold with a fresh summary store versus served
      warm by the daemon, with the insertions checked byte-identical
      across every path — the point being that the fast path changes
      nothing but the latency. *)

module Json = Gofree_obs.Json
module Server = Gofree_server.Server
module Client = Gofree_server.Client
module Rpc = Gofree_server.Rpc
module W = Gofree_workloads.Workloads

let now_ms () = Unix.gettimeofday () *. 1000.

let time f =
  let t0 = now_ms () in
  let v = f () in
  (now_ms () -. t0, v)

(** Median of [n] timings of [f] (first result kept). *)
let median_ms n f =
  let v = ref None in
  let samples =
    List.init n (fun _ ->
        let ms, r = time f in
        if !v = None then v := Some r;
        ms)
    |> List.sort compare |> Array.of_list
  in
  (samples.(Array.length samples / 2), Option.get !v)

let ok_exn = function
  | Ok v -> v
  | Error (code, m) -> failwith (Printf.sprintf "rpc %s: %s" code m)

let insertions_of_analyze r = Json.to_string (Json.get "insertions" r)

(* ---- analyze: six workloads ---- *)

let run_analyze ~runs socket =
  Bench_common.heading
    "serve: cold compile vs daemon (analyze, median ms)";
  Printf.printf "  %-10s %10s %12s %12s %9s\n" "workload" "cold"
    "daemon-cold" "daemon-warm" "speedup";
  List.iter
    (fun w ->
      let source = W.source_of w in
      let request =
        Rpc.Analyze
          { src = Rpc.Inline source; config = Gofree_api.Preset.(to_config default);
            explain = false }
      in
      let cold_ms, _ =
        median_ms runs (fun () ->
            match Gofree_api.compile_string source with
            | Ok c -> ignore (Gofree_api.insertions c)
            | Error e -> failwith (Gofree_api.error_message e))
      in
      let c = Client.connect ~socket in
      (* first request: resident miss *)
      let first_ms, first = time (fun () -> ok_exn (Client.call c request)) in
      assert (Json.get "cached" first = Json.Bool false);
      (* warm requests: resident hits, median over [runs] *)
      let warm_ms, warm =
        median_ms runs (fun () -> ok_exn (Client.call c request))
      in
      Client.close c;
      assert (Json.get "cached" warm = Json.Bool true);
      let identical = insertions_of_analyze first = insertions_of_analyze warm in
      if not identical then
        failwith (w.W.w_name ^ ": warm insertions differ from cold");
      Printf.printf "  %-10s %9.2f %11.2f %11.2f %8.1fx\n" w.W.w_name
        cold_ms first_ms warm_ms
        (if warm_ms > 0. then cold_ms /. warm_ms else infinity))
    W.all;
  print_newline ()

(* ---- build: examples/multipkg ---- *)

let rec copy_tree src dst =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let s = Filename.concat src name and d = Filename.concat dst name in
      if Sys.is_directory s then copy_tree s d
      else begin
        let ic = open_in_bin s in
        let n = in_channel_length ic in
        let bytes = really_input_string ic n in
        close_in ic;
        let oc = open_out_bin d in
        output_string oc bytes;
        close_out oc
      end)
    (Sys.readdir src)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let scratch_multipkg () =
  let dst =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-serve-bench-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dst then remove_tree dst;
  copy_tree (Filename.concat "examples" "multipkg") dst;
  dst

let insertion_triples = function
  | Json.List l ->
    List.map
      (fun i ->
        ( Json.get_string "function" i,
          Json.get_string "variable" i,
          Json.get_string "kind" i ))
      l
  | _ -> failwith "insertions is not a list"

let run_build ~runs socket =
  let root = scratch_multipkg () in
  Fun.protect ~finally:(fun () -> remove_tree root) @@ fun () ->
  Bench_common.heading
    "serve: cold build vs daemon (examples/multipkg, median ms)";
  (* cold: fresh analysis every time — what `gofreec build --force` pays
     in a new process *)
  let cold_ms, direct =
    median_ms runs (fun () ->
        match Gofree_api.build_dir ~force:true root with
        | Ok b -> b
        | Error e -> failwith (Gofree_api.error_message e))
  in
  let direct_insertions =
    List.map
      (fun i ->
        ( i.Gofree_api.ins_function,
          i.Gofree_api.ins_variable,
          Gofree_api.free_kind_name i.Gofree_api.ins_kind ))
      (Gofree_api.build_insertions direct)
  in
  let request force =
    Rpc.Build
      { dir = root; config = Gofree_api.Preset.(to_config default); force; jobs = 1;
        run = false; cache_dir = None;
        options = Gofree_api.default_run_options }
  in
  let c = Client.connect ~socket in
  let first_ms, first = time (fun () -> ok_exn (Client.call c (request false))) in
  let warm_ms, warm =
    median_ms runs (fun () -> ok_exn (Client.call c (request false)))
  in
  Client.close c;
  assert (Json.get_string "resident_cache" first = "miss");
  assert (Json.get_string "resident_cache" warm = "hit");
  let ins_first = insertion_triples (Json.get "insertions" first) in
  let ins_warm = insertion_triples (Json.get "insertions" warm) in
  let identical = direct_insertions = ins_first && ins_first = ins_warm in
  Printf.printf "  %-16s %10s %12s %12s %9s\n" "tree" "cold" "daemon-cold"
    "daemon-warm" "speedup";
  Printf.printf "  %-16s %9.2f %11.2f %11.2f %8.1fx\n" "multipkg" cold_ms
    first_ms warm_ms
    (if warm_ms > 0. then cold_ms /. warm_ms else infinity);
  Printf.printf "  insertions identical (direct = daemon-cold = daemon-warm): %b\n"
    identical;
  Printf.printf
    "  warm stats doc byte-identical to daemon-cold: %b\n\n"
    (Json.to_string (Json.get "stats" first)
    = Json.to_string (Json.get "stats" warm));
  if not identical then failwith "warm build changed the insertions"

let run ~options () =
  let runs = max 3 options.Bench_common.runs in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-serve-bench-%d.sock" (Unix.getpid ()))
  in
  let t = Server.start ~socket () in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      run_analyze ~runs socket;
      run_build ~runs socket)
