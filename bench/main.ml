(** Evaluation harness: regenerates every table and figure of the paper's
    evaluation section (§6) against the OCaml reproduction.

    Usage:
      dune exec bench/main.exe                    # everything, quick sizes
      dune exec bench/main.exe -- --runs 99       # paper-sized repetitions
      dune exec bench/main.exe -- --only table7   # one experiment
      dune exec bench/main.exe -- --bechamel      # bechamel pass timings

    Experiments: table3, fig10, fig11, table7, table8, table9,
    compile_speed, robustness, ablation, serve, load, telemetry,
    incremental, engines, parallel, precision,
    bench_json.

    [--only bench_json] writes BENCH_gofree.json: per-workload free
    ratio, GC cycles, max heap, wall time and compile-phase timings in
    one machine-readable document.

    [--only precision] prints per-mode free ratios/insertions and writes
    precision_smoke.json, the document CI gates against the committed
    bench/precision_smoke.json. *)

let usage = "bench/main.exe [--runs N] [--scale PCT] [--only NAME] [--bechamel]"

let parse_args () =
  let runs = ref Bench_common.default_options.Bench_common.runs in
  let scale = ref Bench_common.default_options.Bench_common.scale in
  let seed = ref Bench_common.default_options.Bench_common.seed in
  let engine = ref Bench_common.default_options.Bench_common.engine in
  let only = ref [] in
  let bechamel = ref false in
  let set_engine = function
    | "reference" -> engine := Gofree_interp.Interp.Eng_reference
    | "closure" -> engine := Gofree_interp.Interp.Eng_closure
    | "bytecode" -> engine := Gofree_interp.Interp.Eng_bytecode
    | s ->
      raise
        (Arg.Bad ("unknown engine " ^ s ^ " (reference|closure|bytecode)"))
  in
  let spec =
    [
      ("--runs", Arg.Set_int runs, "N repetitions per setting (default 7)");
      ("--scale", Arg.Set_int scale,
       "PCT workload size, percent of default (default 100)");
      ("--seed", Arg.Set_int seed, "N PRNG seed for the workloads");
      ("--engine", Arg.String set_engine,
       "NAME execution engine: reference | closure | bytecode (default)");
      ("--only", Arg.String (fun s -> only := s :: !only),
       "NAME run only this experiment (repeatable)");
      ("--bechamel", Arg.Set bechamel, " run bechamel pass timings");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  ( { Bench_common.runs = !runs; scale = !scale; seed = !seed;
      engine = !engine },
    !only,
    !bechamel )

let run_bechamel () =
  let open Bechamel in
  let tests = Exp_compile_speed.bechamel_tests () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:(Some 500) ()
  in
  let analyze raw =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
      (Toolkit.Instance.monotonic_clock) raw
  in
  Bench_common.heading "Bechamel pass timings (ns per run)";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ])
      in
      let ols = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-40s %12.0f ns\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        ols)
    tests

let () =
  let options, only, bechamel = parse_args () in
  let want name = only = [] || List.mem name only in
  Printf.printf
    "GoFree reproduction evaluation harness — runs=%d scale=%d%% engine=%s\n"
    options.Bench_common.runs options.Bench_common.scale
    (Bench_common.engine_name options.Bench_common.engine);
  if bechamel then run_bechamel ()
  else begin
    if want "table3" then Exp_table3.run ();
    if want "fig10" then Exp_fig10.run ~options ();
    if want "fig11" then Exp_fig11.run ~options ();
    if want "table7" then ignore (Exp_table7.run ~options ());
    if want "table8" then Exp_table8.run ~options ();
    if want "table9" then Exp_table9.run ~options ();
    if want "compile_speed" then Exp_compile_speed.run ~options ();
    if want "robustness" then Exp_robustness.run ~options ();
    if want "ablation" then Exp_ablation.run ~options ();
    if want "serve" then Exp_serve.run ~options ();
    if want "load" then Exp_load.run ~options ();
    if want "telemetry" then Exp_telemetry.run ~options ();
    if want "incremental" then Exp_incremental.run ~options ();
    if want "engines" then Exp_engines.run ~options ();
    if want "parallel" then Exp_parallel.run ~options ();
    if want "precision" then Exp_precision.run ~options ();
    if want "bench_json" then Exp_bench_json.run ~options ()
  end
