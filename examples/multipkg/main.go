package main

import (
	"util"
	"data"
)

func main() {
	xs := util.MakeRange(16)
	ys := util.Scale(xs, 3)
	total := util.Sum(ys)
	ps := data.Grid(8)
	c := data.Centroid(ps)
	println("total", total)
	println("centroid", c.X, c.Y)
}
