package data

import "util"

type Point struct {
	X int
	Y int
}

func Centroid(ps []Point) Point {
	n := len(ps)
	if n == 0 {
		return Point{}
	}
	sx := 0
	sy := 0
	for i := range ps {
		sx = sx + ps[i].X
		sy = sy + ps[i].Y
	}
	return Point{X: sx / n, Y: sy / n}
}

// Grid allocates through util: the slice returned by util.MakeRange is
// freed here once data's analysis sees util's stored summary.
func Grid(n int) []Point {
	xs := util.MakeRange(n)
	ps := make([]Point, n)
	total := util.Sum(xs)
	for i := range ps {
		ps[i] = Point{X: xs[i], Y: total}
	}
	return ps
}
