package util

// Exported helpers shared by the other packages.  MakeRange and Scale
// return fresh slices, so their stored content tags let importing
// packages free the results explicitly (cross-package IPA).

func Sum(xs []int) int {
	s := 0
	for i := range xs {
		s = s + xs[i]
	}
	return s
}

func MakeRange(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// unexported: only callable from inside util
func scale(x int, k int) int {
	return x * k
}

func Scale(xs []int, k int) []int {
	ys := make([]int, len(xs))
	for i := range xs {
		ys[i] = scale(xs[i], k)
	}
	return ys
}
