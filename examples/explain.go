package main

// Demo input for `gofreec analyze examples/explain.go --explain`:
// each function exercises a different allocation-site fate, so the
// diagnostics show one freed site, one escaping site, one stored into a
// global, one kept alive across loop iterations (outlived), and one
// made incomplete by an indirect store.

var g []int

// freed: the slice never leaves the function, so a tcfree is inserted
// at the end of its scope.
func localSum(n int) int {
	xs := make([]int, n)
	s := 0
	for i := range xs {
		xs[i] = i
		s = s + xs[i]
	}
	return s
}

// escapes to caller: the slice is the return value.
func escaping(n int) []int {
	ys := make([]int, n)
	ys[0] = n
	return ys
}

// escapes to global: the slice outlives every frame.
func stored(n int) {
	zs := make([]int, n)
	zs[0] = n
	g = zs
}

// outlived: each iteration's slice is kept by a variable of an
// enclosing scope, so freeing inside the loop would dangle.
func keeper(n int) int {
	var keep []int
	for i := 0; i < n; i++ {
		tmp := make([]int, 3)
		tmp[0] = i
		keep = tmp
	}
	return keep[0]
}

// incomplete: the indirect store through ps means the analysis can no
// longer claim it has seen everything s might reference.
func indirect(n int) int {
	s := make([]int, n)
	ps := &s
	t := make([]int, n)
	t[0] = 7
	*ps = t
	x := s[0]
	return x
}

func main() {
	println("localSum", localSum(8))
	println("escaping", len(escaping(4)))
	stored(4)
	println("stored", len(g))
	println("keeper", keeper(3))
	println("indirect", indirect(5))
}
