(** Cmdliner terms and plumbing shared by the [gofreec] subcommands.

    Every command takes its pipeline configuration from the same preset
    triple, its execution knobs from the same options block, and its
    observability outputs from the same [--trace]/[--metrics-json] pair
    — declared once here so [run], [build], [compare], [serve] and
    [client] cannot drift apart. *)

open Cmdliner
module Json = Gofree_obs.Json
module Trace = Gofree_obs.Trace

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------------------------------------------------------- *)
(* Pipeline configuration preset (--go / --all-targets / --no-ipa)    *)
(* ---------------------------------------------------------------- *)

let go_flag =
  Arg.(value & flag & info [ "go" ] ~doc:"Compile with stock Go (no tcfree)")

let all_targets_flag =
  Arg.(value & flag & info [ "all-targets" ]
         ~doc:"Free all pointer types, not only slices and maps")

let no_ipa_flag =
  Arg.(value & flag & info [ "no-ipa" ]
         ~doc:"Disable inter-procedural content tags (ablation)")

let preset_term : Gofree_api.preset Term.t =
  Term.(
    const (fun go all_targets no_ipa ->
        Gofree_api.preset_of_flags ~go ~all_targets ~no_ipa)
    $ go_flag $ all_targets_flag $ no_ipa_flag)

(* --precision: the opt-in analysis precision modes, composable with the
   historical preset triple (e.g. --all-targets --precision last-use). *)
let precision_conv : Gofree_core.Config.precision Arg.conv =
  Arg.enum
    [
      ("baseline", Gofree_core.Config.baseline_precision);
      ( "field-sensitive",
        { Gofree_core.Config.baseline_precision with
          Gofree_core.Config.field_sensitive = true } );
      ( "last-use",
        { Gofree_core.Config.baseline_precision with
          Gofree_core.Config.placement = Gofree_core.Config.Last_use } );
      ("precise", Gofree_core.Config.precise_precision);
    ]

let precision_arg =
  Arg.(value
       & opt precision_conv Gofree_core.Config.baseline_precision
       & info [ "precision" ] ~docv:"MODE"
           ~doc:"Analysis precision mode: $(b,baseline) (the paper's \
                 field-insensitive analysis, frees at scope exit), \
                 $(b,field-sensitive) (per-field points-to/escape \
                 facts), $(b,last-use) (insert tcfree at the last use \
                 instead of scope exit) or $(b,precise) (both).  All \
                 modes keep the paper's safety protocol (5).")

let config_term : Gofree_api.config Term.t =
  Term.(
    const (fun preset precision ->
        Gofree_api.Preset.(
          of_config (Gofree_api.config_of_preset preset)
          |> with_precision precision |> to_config))
    $ preset_term $ precision_arg)

(* ---------------------------------------------------------------- *)
(* Execution options (--gc-off / --poison / --gogc / --seed / ...)    *)
(* ---------------------------------------------------------------- *)

let gcoff_flag =
  Arg.(value & flag & info [ "gc-off" ] ~doc:"Disable the garbage collector")

let poison_flag =
  Arg.(value & flag & info [ "poison" ]
         ~doc:"Mock tcfree: corrupt freed memory to detect wrong frees \
               (paper 6.8)")

let gogc_arg =
  Arg.(value & opt int 100 & info [ "gogc" ] ~doc:"GOGC pacing percentage")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed for rand()")

let sample_every_arg =
  Arg.(value & opt int 0 & info [ "sample-every" ] ~docv:"N"
         ~doc:"Snapshot heap counters every $(docv) interpreter steps \
               (0 = only when --metrics-json is given, then every 1000)")

let engine_conv : Gofree_api.engine Arg.conv =
  Arg.enum
    [
      ("reference", Gofree_api.Eng_reference);
      ("closure", Gofree_api.Eng_closure);
      ("bytecode", Gofree_api.Eng_bytecode);
    ]

let engine_arg =
  Arg.(value
       & opt engine_conv Gofree_api.default_run_options.Gofree_api.engine
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: $(b,reference) (tree-walking), \
                 $(b,closure) (closure-compiled) or $(b,bytecode) (flat \
                 bytecode VM with inline caches, the default).  All \
                 three produce identical output and metrics; they \
                 differ only in speed.")

let reference_flag =
  Arg.(value & flag & info [ "reference" ]
         ~doc:"Alias for $(b,--engine reference): execute with the \
               reference tree-walking interpreter (slower; observable \
               behaviour and metrics are identical)")

let domains_arg =
  Arg.(value
       & opt int Gofree_api.default_run_options.Gofree_api.domains
       & info [ "domains" ] ~docv:"N"
           ~doc:"Run goroutines across $(docv) OCaml domains: \
                 work-stealing scheduler, domain-safe allocator, \
                 parallel stop-the-world GC.  0 (the default) keeps \
                 the sequential cooperative scheduler; 1 runs the \
                 domain scheduler single-threaded, byte-identical to \
                 sequential.")

let run_options_term : Gofree_api.run_options Term.t =
  Term.(
    const (fun gc_off poison gogc seed sample_every engine reference domains
           ->
        let engine = if reference then Gofree_api.Eng_reference else engine in
        { Gofree_api.gc_off; poison; gogc; seed; sample_every; engine;
          domains })
    $ gcoff_flag $ poison_flag $ gogc_arg $ seed_arg $ sample_every_arg
    $ engine_arg $ reference_flag $ domains_arg)

(* ---------------------------------------------------------------- *)
(* Observability outputs (--trace / --metrics-json / --metrics)       *)
(* ---------------------------------------------------------------- *)

type obs = { trace : string option; metrics_json : string option }

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print runtime metrics")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Capture a Chrome/Perfetto trace-event JSON of the whole \
               run (compiler phases, GC cycles, tcfree calls, goroutine \
               slices) into $(docv); load it at ui.perfetto.dev")

let metrics_json_arg =
  Arg.(value & opt (some string) None & info [ "metrics-json" ]
         ~docv:"FILE"
         ~doc:"Write the runtime metrics (and the sampled time series) \
               as JSON into $(docv)")

let obs_term : obs Term.t =
  Term.(
    const (fun trace metrics_json -> { trace; metrics_json })
    $ trace_arg $ metrics_json_arg)

let start_trace (o : obs) =
  match o.trace with
  | None -> ()
  | Some _ ->
    Trace.start ();
    Trace.name_thread ~tid:Trace.tid_main "main";
    Trace.name_thread ~tid:Trace.tid_runtime "runtime"

let finish_trace (o : obs) =
  match o.trace with
  | None -> ()
  | Some path -> Trace.stop_to_file path

let write_json path j =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty j);
  close_out oc

(* Sampling cadence: an explicit --sample-every wins; otherwise sampling
   turns on (every 1000 steps) exactly when --metrics-json wants the
   series. *)
let with_effective_sampling (o : obs) (opts : Gofree_api.run_options) =
  if opts.Gofree_api.sample_every > 0 then opts
  else if o.metrics_json <> None then
    { opts with Gofree_api.sample_every = 1000 }
  else opts

(** Write the [--metrics-json] document and print [--metrics], per the
    given flags, for one execution outcome. *)
let emit_outcome ~metrics (o : obs) (outcome : Gofree_api.run_outcome) =
  print_string outcome.Gofree_api.output;
  if metrics then
    Format.printf "%a@." Gofree_api.pp_metrics outcome.Gofree_api.metrics;
  match o.metrics_json with
  | Some path -> write_json path outcome.Gofree_api.metrics_json
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Error discipline                                                  *)
(* ---------------------------------------------------------------- *)

(** Unwrap an API result; errors print as [gofreec: message] and exit
    with the facade's code (1 compile/build, 2 runtime, 3 corruption). *)
let ok : ('a, Gofree_api.error) result -> 'a = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "gofreec: %s\n" (Gofree_api.error_message e);
    exit (Gofree_api.error_exit_code e)

(** Read a file, mapping failures onto the compile-error exit path. *)
let read_source path =
  try read_file path
  with Sys_error m -> ok (Error (Gofree_api.Compile_error m))
