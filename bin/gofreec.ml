(** gofreec — the GoFree reproduction's command-line driver.

    Subcommands:
    - [run FILE]      compile and execute a MiniGo program, with flags to
                      select stock Go vs GoFree, GC off, poison mode, and
                      metric reporting;
    - [analyze FILE]  print escape-analysis properties and points-to sets;
    - [instrument FILE]  print the program with inserted tcfree calls;
    - [compare FILE]  run under Go and GoFree and print both metric sets;
    - [build DIR]     compile a multi-package tree incrementally (stored
                      summaries, parallel analysis), link and optionally
                      run it. *)

open Cmdliner
module Trace = Gofree_obs.Trace
module Json = Gofree_obs.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gofree_config ~go ~all_targets ~no_ipa =
  if go then Gofree_core.Config.go
  else if all_targets then Gofree_core.Config.all_targets
  else if no_ipa then Gofree_core.Config.no_ipa
  else Gofree_core.Config.gofree

let run_config ?(reference = false) ~gcoff ~poison ~gogc ~seed ~sample_every
    ~insert_tcfree () =
  {
    Gofree_interp.Interp.default_config with
    heap_config =
      {
        Gofree_runtime.Heap.default_config with
        gc_disabled = gcoff;
        poison_on_free = poison;
        gogc;
        grow_map_free_old = insert_tcfree;
      };
    seed = Int64.of_int seed;
    sample_every;
    compiled = not reference;
  }

(* ---- observability plumbing ---- *)

let start_trace = function
  | None -> ()
  | Some _ ->
    Trace.start ();
    Trace.name_thread ~tid:Trace.tid_main "main";
    Trace.name_thread ~tid:Trace.tid_runtime "runtime"

let finish_trace = function
  | None -> ()
  | Some path -> Trace.stop_to_file path

let write_json path j =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty j);
  close_out oc

(* The --metrics-json document: the final counters plus the sampler's
   time series when one was recorded. *)
let metrics_doc (r : Gofree_interp.Runner.result) : Json.t =
  Json.Obj
    ([ ("metrics", Gofree_runtime.Metrics.to_json
          r.Gofree_interp.Runner.metrics) ]
    @
    match r.Gofree_interp.Runner.sampler with
    | Some s -> [ ("samples", Gofree_runtime.Sampler.to_json s) ]
    | None -> [])

(* Sampling cadence: an explicit --sample-every wins; otherwise sampling
   turns on (every 1000 steps) exactly when --metrics-json wants the
   series. *)
let effective_sample_every ~sample_every ~metrics_json =
  if sample_every > 0 then sample_every
  else if metrics_json <> None then 1000
  else 0

let handle_errors f =
  try f () with
  | Gofree_core.Pipeline.Compile_error msg ->
    Printf.eprintf "gofreec: %s\n" msg;
    exit 1
  | Gofree_interp.Interp.Runtime_error msg ->
    Printf.eprintf "gofreec: runtime error: %s\n" msg;
    exit 2
  | Gofree_interp.Value.Corruption msg ->
    Printf.eprintf "gofreec: MEMORY CORRUPTION DETECTED: %s\n" msg;
    exit 3

(* shared flags *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniGo source file")

let go_flag =
  Arg.(value & flag & info [ "go" ] ~doc:"Compile with stock Go (no tcfree)")

let all_targets_flag =
  Arg.(value & flag & info [ "all-targets" ]
         ~doc:"Free all pointer types, not only slices and maps")

let no_ipa_flag =
  Arg.(value & flag & info [ "no-ipa" ]
         ~doc:"Disable inter-procedural content tags (ablation)")

let gcoff_flag =
  Arg.(value & flag & info [ "gc-off" ] ~doc:"Disable the garbage collector")

let poison_flag =
  Arg.(value & flag & info [ "poison" ]
         ~doc:"Mock tcfree: corrupt freed memory to detect wrong frees \
               (paper 6.8)")

let gogc_arg =
  Arg.(value & opt int 100 & info [ "gogc" ] ~doc:"GOGC pacing percentage")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed for rand()")

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print runtime metrics")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Capture a Chrome/Perfetto trace-event JSON of the whole \
               run (compiler phases, GC cycles, tcfree calls, goroutine \
               slices) into $(docv); load it at ui.perfetto.dev")

let metrics_json_arg =
  Arg.(value & opt (some string) None & info [ "metrics-json" ]
         ~docv:"FILE"
         ~doc:"Write the runtime metrics (and the sampled time series) \
               as JSON into $(docv)")

let sample_every_arg =
  Arg.(value & opt int 0 & info [ "sample-every" ] ~docv:"N"
         ~doc:"Snapshot heap counters every $(docv) interpreter steps \
               (0 = only when --metrics-json is given, then every 1000)")

let reference_flag =
  Arg.(value & flag & info [ "reference" ]
         ~doc:"Execute with the reference tree-walking interpreter \
               instead of the closure-compiled one (slower; observable \
               behaviour and metrics are identical)")

(* run *)
let run_cmd =
  let run file go all_targets no_ipa gcoff poison gogc seed metrics trace
      metrics_json sample_every reference =
    handle_errors (fun () ->
        let cfg = gofree_config ~go ~all_targets ~no_ipa in
        let rc =
          run_config ~reference ~gcoff ~poison ~gogc ~seed
            ~sample_every:
              (effective_sample_every ~sample_every ~metrics_json)
            ~insert_tcfree:cfg.Gofree_core.Config.insert_tcfree ()
        in
        start_trace trace;
        let result =
          Gofree_interp.Runner.compile_and_run ~gofree_config:cfg
            ~run_config:rc (read_file file)
        in
        finish_trace trace;
        print_string result.Gofree_interp.Runner.output;
        if metrics then
          Format.printf "%a@." Gofree_runtime.Metrics.pp
            result.Gofree_interp.Runner.metrics;
        (match metrics_json with
        | Some path -> write_json path (metrics_doc result)
        | None -> ());
        if result.Gofree_interp.Runner.panicked then exit 2)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a MiniGo program")
    Term.(
      const run $ file_arg $ go_flag $ all_targets_flag $ no_ipa_flag
      $ gcoff_flag $ poison_flag $ gogc_arg $ seed_arg $ metrics_flag
      $ trace_arg $ metrics_json_arg $ sample_every_arg $ reference_flag)

(* analyze *)
let analyze_cmd =
  let func_arg =
    Arg.(value & opt (some string) None & info [ "func" ]
           ~doc:"Only print this function")
  in
  let dot_flag =
    Arg.(value & flag & info [ "dot" ]
           ~doc:"Emit the escape graph as Graphviz DOT instead of text")
  in
  let explain_flag =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Per allocation site: the stack/heap decision and, for \
                 heap sites, the inserted tcfree that reclaims it or \
                 the property blocking the free")
  in
  let analyze file go func dot explain =
    handle_errors (fun () ->
        let cfg = gofree_config ~go ~all_targets:false ~no_ipa:false in
        let compiled =
          Gofree_core.Pipeline.compile ~config:cfg (read_file file)
        in
        let funcs =
          match func with
          | Some f -> [ f ]
          | None ->
            List.map
              (fun (f : Minigo.Tast.func) -> f.Minigo.Tast.f_name)
              compiled.Gofree_core.Pipeline.c_program.Minigo.Tast.p_funcs
        in
        if explain then
          Format.printf "%a@." Gofree_core.Report.pp_explain
            (Gofree_core.Report.explain
               compiled.Gofree_core.Pipeline.c_analysis
               compiled.Gofree_core.Pipeline.c_inserted cfg
               compiled.Gofree_core.Pipeline.c_program)
        else if dot then
          List.iter
            (fun name ->
              match
                Gofree_core.Report.to_dot
                  compiled.Gofree_core.Pipeline.c_analysis name
              with
              | Some dot -> print_string dot
              | None -> Printf.eprintf "no analysis for %s\n" name)
            funcs
        else begin
          List.iter
            (fun name ->
              Format.printf "%a@."
                (fun fmt () ->
                  Gofree_core.Report.pp_function fmt
                    compiled.Gofree_core.Pipeline.c_analysis name)
                ())
            funcs;
          Format.printf "%a@." Gofree_core.Report.pp_inserted
            compiled.Gofree_core.Pipeline.c_inserted
        end)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print escape-analysis properties and points-to sets")
    Term.(
      const analyze $ file_arg $ go_flag $ func_arg $ dot_flag
      $ explain_flag)

(* instrument *)
let instrument_cmd =
  let instrument file all_targets no_ipa =
    handle_errors (fun () ->
        let cfg = gofree_config ~go:false ~all_targets ~no_ipa in
        let compiled =
          Gofree_core.Pipeline.compile ~config:cfg (read_file file)
        in
        print_string
          (Minigo.Pretty.program_to_string
             compiled.Gofree_core.Pipeline.c_program))
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Print the program with inserted tcfree calls")
    Term.(const instrument $ file_arg $ all_targets_flag $ no_ipa_flag)

(* compare *)
let compare_cmd =
  let compare_run file gogc seed =
    handle_errors (fun () ->
        let source = read_file file in
        let run cfg =
          Gofree_interp.Runner.compile_and_run ~gofree_config:cfg
            ~run_config:
              (run_config ~gcoff:false ~poison:false ~gogc ~seed
                 ~sample_every:0
                 ~insert_tcfree:cfg.Gofree_core.Config.insert_tcfree ())
            source
        in
        let go = run Gofree_core.Config.go in
        let gf = run Gofree_core.Config.gofree in
        Format.printf "== Go ==@.%a@.@.== GoFree ==@.%a@.@."
          Gofree_runtime.Metrics.pp go.Gofree_interp.Runner.metrics
          Gofree_runtime.Metrics.pp gf.Gofree_interp.Runner.metrics;
        Printf.printf "outputs identical: %b\n"
          (String.equal go.Gofree_interp.Runner.output
             gf.Gofree_interp.Runner.output))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run under Go and GoFree; print both metrics")
    Term.(const compare_run $ file_arg $ gogc_arg $ seed_arg)

(* build *)
let build_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Root of a multi-package MiniGo tree: root files are \
                 package main, each subdirectory is one package")
  in
  let jobs_arg =
    Arg.(value & opt int 0 & info [ "j"; "jobs" ]
           ~doc:"Analyze up to $(docv) independent packages in parallel \
                 (0 = pick from the machine)" ~docv:"N")
  in
  let cache_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ]
           ~doc:"Summary store location (default DIR/.gofree-cache)")
  in
  let force_flag =
    Arg.(value & flag & info [ "force" ]
           ~doc:"Ignore the summary store; re-analyze every package")
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Execute the linked program")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print per-package timing and cache statistics")
  in
  let stats_json_arg =
    Arg.(value & opt (some string) None & info [ "stats-json" ]
           ~docv:"FILE"
           ~doc:"Write per-package timing and cache statistics as JSON \
                 into $(docv)")
  in
  let build dir go all_targets no_ipa jobs cache_dir force run stats gcoff
      poison gogc seed metrics trace metrics_json sample_every stats_json
      reference =
    handle_errors (fun () ->
        (* metrics only exist after execution *)
        let run = run || metrics_json <> None in
        let cfg = gofree_config ~go ~all_targets ~no_ipa in
        start_trace trace;
        let result =
          try
            Gofree_build.Driver.build ~config:cfg ?cache_dir ~jobs ~force
              dir
          with
          | Gofree_build.Driver.Error msg | Gofree_build.Loader.Error msg ->
            Printf.eprintf "gofreec: %s\n" msg;
            exit 1
        in
        if stats then
          Format.printf "%a@." Gofree_build.Driver.pp_stats
            result.Gofree_build.Driver.b_stats;
        (match stats_json with
        | Some path ->
          write_json path
            (Gofree_build.Driver.stats_to_json
               result.Gofree_build.Driver.b_stats)
        | None -> ());
        if run then begin
          let rc =
            run_config ~reference ~gcoff ~poison ~gogc ~seed
              ~sample_every:
                (effective_sample_every ~sample_every ~metrics_json)
              ~insert_tcfree:cfg.Gofree_core.Config.insert_tcfree ()
          in
          let decisions =
            {
              Gofree_interp.Decisions.site_heap =
                result.Gofree_build.Driver.b_site_heap;
              var_boxed = result.Gofree_build.Driver.b_var_boxed;
            }
          in
          let r =
            Gofree_interp.Runner.run_program ~config:rc ~decisions
              result.Gofree_build.Driver.b_program
          in
          finish_trace trace;
          print_string r.Gofree_interp.Runner.output;
          if metrics then
            Format.printf "%a@." Gofree_runtime.Metrics.pp
              r.Gofree_interp.Runner.metrics;
          (match metrics_json with
          | Some path -> write_json path (metrics_doc r)
          | None -> ());
          if r.Gofree_interp.Runner.panicked then exit 2
        end
        else begin
          finish_trace trace;
          if not stats then
            Printf.printf "built %d package(s) (%d from cache)\n"
              (List.length
                 result.Gofree_build.Driver.b_stats
                   .Gofree_build.Driver.bs_pkgs)
              result.Gofree_build.Driver.b_stats
                .Gofree_build.Driver.bs_hits
        end)
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Compile a multi-package tree (incremental, parallel); link \
             and optionally run it")
    Term.(
      const build $ dir_arg $ go_flag $ all_targets_flag $ no_ipa_flag
      $ jobs_arg $ cache_arg $ force_flag $ run_flag $ stats_flag
      $ gcoff_flag $ poison_flag $ gogc_arg $ seed_arg $ metrics_flag
      $ trace_arg $ metrics_json_arg $ sample_every_arg $ stats_json_arg
      $ reference_flag)

let main_cmd =
  Cmd.group
    (Cmd.info "gofreec" ~version:"1.0.0"
       ~doc:"GoFree reproduction: compiler-inserted freeing for MiniGo")
    [ run_cmd; analyze_cmd; instrument_cmd; compare_cmd; build_cmd ]

let () = exit (Cmd.eval main_cmd)
