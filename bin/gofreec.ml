(** gofreec — the GoFree reproduction's command-line driver.

    Subcommands:
    - [run FILE]      compile and execute a MiniGo program;
    - [workload NAME] print a benchmark workload's MiniGo source;
    - [analyze FILE]  print escape-analysis properties and points-to sets;
    - [instrument FILE]  print the program with inserted tcfree calls;
    - [disasm FILE]   print the bytecode-engine lowering (flat
                      instructions, resolved slots, inline-cache sites);
    - [compare FILE]  run under Go and GoFree and print both metric sets;
    - [build DIR]     compile a multi-package tree incrementally;
    - [serve]         long-running compile/analysis daemon on a Unix
                      socket (newline-delimited JSON, [gofree-rpc-v1]);
    - [client]        drive a serving daemon from the shell;
    - [load]          load-generation harness against a serving daemon
                      ([gofree-load-v1] report, SLO-gated exit code).

    Every entry point goes through {!Gofree_api} — this file owns flag
    parsing and output formatting only. *)

open Cmdliner
open Cli_common
module Json = Gofree_obs.Json

(* shared positional *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"MiniGo source file")

(* run *)
let run_cmd =
  let run file config options metrics obs =
    let options = with_effective_sampling obs options in
    let source = read_source file in
    start_trace obs;
    let outcome = ok (Gofree_api.run_string ~config ~options source) in
    finish_trace obs;
    emit_outcome ~metrics obs outcome;
    if outcome.Gofree_api.panicked then exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a MiniGo program")
    Term.(
      const run $ file_arg $ config_term $ run_options_term $ metrics_flag
      $ obs_term)

(* workload *)
let workload_cmd =
  let module W = Gofree_workloads.Workloads in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Workload name; omit to list the registry")
  in
  let size_arg =
    Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N"
           ~doc:"Workload size knob (default: the workload's own)")
  in
  let workload name size =
    match name with
    | None ->
      List.iter
        (fun (w : W.t) ->
          Printf.printf "%-10s (size %d)  %s\n" w.W.w_name w.W.w_default_size
            w.W.w_description)
        (W.all @ [ W.fanout ])
    | Some name -> begin
      match W.find name with
      | Some w -> print_string (W.source_of ?size w)
      | None ->
        Printf.eprintf "unknown workload %s (try: gofreec workload)\n" name;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Print a benchmark workload's MiniGo source (or list them); \
             pipe into a file to run it under any flags")
    Term.(const workload $ name_arg $ size_arg)

(* analyze *)
let analyze_cmd =
  let func_arg =
    Arg.(value & opt (some string) None & info [ "func" ]
           ~doc:"Only print this function")
  in
  let dot_flag =
    Arg.(value & flag & info [ "dot" ]
           ~doc:"Emit the escape graph as Graphviz DOT instead of text")
  in
  let explain_flag =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Per allocation site: the stack/heap decision and, for \
                 heap sites, the inserted tcfree that reclaims it or \
                 the property blocking the free")
  in
  let analyze file config func dot explain delta_base =
    let c = ok (Gofree_api.analyze_file ~config file) in
    (match delta_base with
    | Some base_name ->
      (* Which blocking reasons this config eliminates vs the baseline. *)
      let base_config =
        match Gofree_api.Preset.of_name base_name with
        | Some p -> Gofree_api.Preset.to_config p
        | None ->
          Printf.eprintf "gofreec: unknown preset %S for --explain-delta\n"
            base_name;
          exit 1
      in
      let cb = ok (Gofree_api.analyze_file ~config:base_config file) in
      let delta =
        Gofree_api.explain_delta ~baseline:(Gofree_api.explain cb)
          ~refined:(Gofree_api.explain c)
      in
      print_endline (Gofree_obs.Json.to_string delta)
    | None ->
    if explain then
      Format.printf "%a@." Gofree_api.pp_explain (Gofree_api.explain c)
    else if dot then begin
      let funcs =
        match func with
        | Some f -> [ f ]
        | None -> Gofree_api.function_names c
      in
      List.iter
        (fun name ->
          match Gofree_api.analysis_dot c ~func:name with
          | Some dot -> print_string dot
          | None -> Printf.eprintf "no analysis for %s\n" name)
        funcs
    end
    else Format.printf "%a@." (Gofree_api.pp_analysis ?func) c)
  in
  let delta_arg =
    Arg.(value & opt (some string) None & info [ "explain-delta" ]
           ~docv:"PRESET"
           ~doc:"Analyze under both $(docv) (baseline) and the selected \
                 preset; print a JSON report of which blocking reasons \
                 the selected preset eliminates")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print escape-analysis properties and points-to sets")
    Term.(
      const analyze $ file_arg $ config_term $ func_arg $ dot_flag
      $ explain_flag $ delta_arg)

(* instrument *)
let instrument_cmd =
  let instrument file config =
    let c = ok (Gofree_api.analyze_file ~config file) in
    print_string (Gofree_api.instrumented_source c)
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Print the program with inserted tcfree calls")
    Term.(const instrument $ file_arg $ config_term)

(* disasm *)
let disasm_cmd =
  let disasm file config =
    let c = ok (Gofree_api.analyze_file ~config file) in
    print_string (Gofree_api.disassemble c)
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Print the bytecode-engine lowering of the program: flat \
             instructions with resolved slot names, interned callees \
             and inline-cache sites")
    Term.(const disasm $ file_arg $ config_term)

(* compare *)
let compare_cmd =
  let compare_run file options =
    let source = read_source file in
    let run preset =
      ok
        (Gofree_api.run_string
           ~config:(Gofree_api.config_of_preset preset)
           ~options source)
    in
    let go = run Gofree_api.Go in
    let gf = run Gofree_api.Gofree in
    Format.printf "== Go ==@.%a@.@.== GoFree ==@.%a@.@."
      Gofree_api.pp_metrics go.Gofree_api.metrics Gofree_api.pp_metrics
      gf.Gofree_api.metrics;
    Printf.printf "outputs identical: %b\n"
      (String.equal go.Gofree_api.output gf.Gofree_api.output)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run under Go and GoFree; print both metrics")
    Term.(const compare_run $ file_arg $ run_options_term)

(* build *)
let dir_arg =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
         ~doc:"Root of a multi-package MiniGo tree: root files are \
               package main, each subdirectory is one package")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ]
         ~doc:"Analyze up to $(docv) independent packages in parallel \
               (0 = pick from the machine)" ~docv:"N")

let cache_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ]
         ~doc:"Summary store location (default DIR/.gofree-cache)")

let force_flag =
  Arg.(value & flag & info [ "force" ]
         ~doc:"Ignore the summary store; re-analyze every package")

let build_cmd =
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Execute the linked program")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print per-package timing and cache statistics")
  in
  let stats_json_arg =
    Arg.(value & opt (some string) None & info [ "stats-json" ]
           ~docv:"FILE"
           ~doc:"Write per-package timing and cache statistics as JSON \
                 into $(docv)")
  in
  let build dir config jobs cache_dir force run stats options metrics obs
      stats_json =
    (* metrics only exist after execution *)
    let run = run || obs.metrics_json <> None in
    let options = with_effective_sampling obs options in
    start_trace obs;
    let b = ok (Gofree_api.build_dir ~config ?cache_dir ~jobs ~force dir) in
    let bstats = Gofree_api.build_stats b in
    if stats then Format.printf "%a@." Gofree_api.pp_build_stats bstats;
    (match stats_json with
    | Some path -> write_json path (Gofree_api.build_stats_to_json bstats)
    | None -> ());
    if run then begin
      let outcome = ok (Gofree_api.run_build ~options b) in
      finish_trace obs;
      emit_outcome ~metrics obs outcome;
      if outcome.Gofree_api.panicked then exit 2
    end
    else begin
      finish_trace obs;
      if not stats then begin
        let packages, hits = Gofree_api.build_cache_counts b in
        Printf.printf "built %d package(s) (%d from cache)\n" packages hits
      end
    end
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Compile a multi-package tree (incremental, parallel); link \
             and optionally run it")
    Term.(
      const build $ dir_arg $ config_term $ jobs_arg $ cache_arg
      $ force_flag $ run_flag $ stats_flag $ run_options_term
      $ metrics_flag $ obs_term $ stats_json_arg)

(* ---------------------------------------------------------------- *)
(* serve                                                             *)
(* ---------------------------------------------------------------- *)

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path")

let serve_cmd =
  let workers_arg =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains executing requests (0 = pick from the \
                 machine)")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Bounded request-queue capacity; a full queue blocks \
                 readers (backpressure)")
  in
  let shed_arg =
    Arg.(value & opt (some int) None & info [ "shed-watermark" ] ~docv:"N"
           ~doc:"Queue depth past which new requests are answered \
                 $(i,overloaded) immediately instead of queueing \
                 (default: the queue capacity)")
  in
  let default_deadline_arg =
    Arg.(value & opt int 0 & info [ "default-deadline-ms" ] ~docv:"MS"
           ~doc:"Server-wide queueing deadline for requests that do not \
                 carry their own $(i,deadline_ms) (0 = none)")
  in
  let log_json_arg =
    Arg.(value & opt (some string) None & info [ "log-json" ] ~docv:"FILE"
           ~doc:"Write a structured event log (one JSON object per \
                 line) into $(docv)")
  in
  let log_level_arg =
    Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Lowest level written to --log-json: debug | info | \
                 warn | error")
  in
  let serve socket workers queue shed_watermark default_deadline_ms
      log_json log_level obs =
    (match log_json with
    | None -> ()
    | Some path -> begin
      match Gofree_obs.Log.level_of_name log_level with
      | Some level -> Gofree_obs.Log.start ~level ~path ()
      | None ->
        Printf.eprintf
          "gofreec: serve: unknown --log-level %S (debug | info | warn \
           | error)\n"
          log_level;
        exit 1
    end);
    start_trace obs;
    let t =
      try
        Gofree_server.Server.create ~workers ~queue_capacity:queue
          ?shed_watermark ~default_deadline_ms ~socket ()
      with
      | Invalid_argument m | Sys_error m ->
        Printf.eprintf "gofreec: serve: %s\n" m;
        exit 1
      | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "gofreec: serve: cannot listen on %s: %s\n" socket
          (Unix.error_message e);
        exit 1
    in
    Printf.printf "gofreec serve: listening on %s\n%!" socket;
    Gofree_server.Server.serve t;
    finish_trace obs;
    Gofree_obs.Log.stop ();
    Printf.printf "gofreec serve: shut down cleanly\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent compile/analysis daemon (gofree-rpc-v1 \
             over a Unix socket)")
    Term.(
      const serve $ socket_arg $ workers_arg $ queue_arg $ shed_arg
      $ default_deadline_arg $ log_json_arg $ log_level_arg $ obs_term)

(* ---------------------------------------------------------------- *)
(* client                                                            *)
(* ---------------------------------------------------------------- *)

let client_cmd =
  let method_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"METHOD"
           ~doc:"analyze | build | run | explain | stats | telemetry | \
                 shutdown")
  in
  let target_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"TARGET"
           ~doc:"Source file (analyze/run/explain) or tree root (build)")
  in
  let explain_flag =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"analyze: include the freeing diagnostics document")
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ]
           ~doc:"build: also execute the linked program")
  in
  let requests_arg =
    Arg.(value & opt (some file) None & info [ "requests" ] ~docv:"FILE"
           ~doc:"Batch mode: send the raw request lines of $(docv) \
                 (one JSON object per line) and print one response line \
                 each; other arguments are ignored")
  in
  let concurrency_arg =
    Arg.(value & opt int 1 & info [ "concurrency" ] ~docv:"N"
           ~doc:"Batch mode: replay over $(docv) connections, each \
                 sending its round-robin shard of the request lines \
                 (a minimal load driver); with N > 1 response lines \
                 interleave in completion order")
  in
  let raw_flag =
    Arg.(value & flag & info [ "raw" ]
           ~doc:"Print compact single-line responses (default: pretty)")
  in
  let prometheus_flag =
    Arg.(value & flag & info [ "prometheus" ]
           ~doc:"telemetry: print the snapshot in Prometheus text \
                 exposition format instead of JSON")
  in
  let client socket meth target config options explain run force jobs
      cache_dir requests concurrency raw prometheus =
    let module C = Gofree_server.Client in
    let print_response j =
      print_string (if raw then Json.to_string j ^ "\n"
                    else Json.to_string_pretty j)
    in
    let fail msg =
      Printf.eprintf "gofreec: client: %s\n" msg;
      exit 1
    in
    match requests with
    | Some path ->
      (* batch: raw lines in, raw lines out — strictly in order on one
         connection, per-shard order across several *)
      let lines =
        String.split_on_char '\n' (read_source path)
        |> List.filter (fun l -> String.trim l <> "")
      in
      let concurrency = max 1 (min concurrency (max 1 (List.length lines))) in
      let out_mutex = Mutex.create () in
      let bad = ref false in
      (* one shard per connection: line [j] goes to connection
         [j mod concurrency], preserving each connection's line order *)
      let replay_shard shard : float list =
        let c = try C.connect ~socket with C.Error m -> fail m in
        let lats =
          List.map
            (fun line ->
              let t0 = Unix.gettimeofday () in
              (try C.send_line c line with C.Error m -> fail m);
              match C.recv c with
              | Some response ->
                let lat_ms = (Unix.gettimeofday () -. t0) *. 1000. in
                Mutex.lock out_mutex;
                (match Json.member "ok" response with
                | Some (Json.Bool false) -> bad := true
                | _ -> ());
                print_string (Json.to_string response ^ "\n");
                Mutex.unlock out_mutex;
                lat_ms
              | None -> fail "server closed the connection mid-batch"
              | exception C.Error m -> fail m)
            shard
        in
        C.close c;
        lats
      in
      let shards =
        List.init concurrency (fun i ->
            List.filteri (fun j _ -> j mod concurrency = i) lines)
        |> List.filter (fun s -> s <> [])
      in
      let results = Array.make (List.length shards) [] in
      let threads =
        List.mapi
          (fun i shard ->
            Thread.create (fun () -> results.(i) <- replay_shard shard) ())
          shards
      in
      List.iter Thread.join threads;
      (* latency summary on stderr: stdout stays pure response lines *)
      let lats = Array.to_list results |> List.concat in
      (match Gofree_stats.Stats.latency_summary (Array.of_list lats) with
      | None -> ()
      | Some s ->
        Printf.eprintf "gofreec client: %d request(s) over %d \
                        connection(s) — %s\n"
          s.Gofree_stats.Stats.ls_count (List.length shards)
          (Gofree_stats.Stats.latency_summary_line s));
      if !bad then exit 1
    | None -> begin
      let source_of target =
        match target with
        | Some path -> Gofree_server.Rpc.Inline (read_source path)
        | None -> fail "this method needs a FILE argument"
      in
      let request =
        match meth with
        | None -> fail "METHOD required (or use --requests FILE)"
        | Some "analyze" ->
          Gofree_server.Rpc.Analyze
            { src = source_of target; config; explain }
        | Some "run" ->
          Gofree_server.Rpc.Run
            { src = source_of target; config; options }
        | Some "explain" ->
          Gofree_server.Rpc.Explain { src = source_of target; config }
        | Some "build" -> begin
          match target with
          | Some dir ->
            Gofree_server.Rpc.Build
              { dir; config; force; jobs; run; cache_dir; options }
          | None -> fail "build needs a DIR argument"
        end
        | Some "stats" -> Gofree_server.Rpc.Stats
        | Some "telemetry" -> Gofree_server.Rpc.Telemetry
        | Some "shutdown" -> Gofree_server.Rpc.Shutdown
        | Some m -> fail (Printf.sprintf "unknown method %S" m)
      in
      match C.call_once ~socket request with
      | Ok result when prometheus && meth = Some "telemetry" -> begin
        (* re-derive the typed snapshot so the exposition shares the
           registry's formatter (and validates the payload en route) *)
        match Gofree_obs.Registry.Snapshot.of_json result with
        | snap ->
          print_string (Gofree_obs.Registry.Snapshot.to_prometheus snap)
        | exception Json.Parse_error m ->
          fail ("telemetry response did not parse: " ^ m)
      end
      | Ok result -> print_response result
      | Error (code, message) ->
        print_response
          (Json.Obj
             [ ("error", Json.Str code); ("message", Json.Str message) ]);
        exit 1
      | exception C.Error m -> fail m
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a serving daemon and print the responses")
    Term.(
      const client $ socket_arg $ method_arg $ target_arg $ config_term
      $ run_options_term $ explain_flag $ run_flag $ force_flag $ jobs_arg
      $ cache_arg $ requests_arg $ concurrency_arg $ raw_flag
      $ prometheus_flag)

(* ---------------------------------------------------------------- *)
(* load                                                              *)
(* ---------------------------------------------------------------- *)

let load_cmd =
  let module H = Gofree_load.Harness in
  let module Mix = Gofree_load.Mix in
  let module Schedule = Gofree_load.Schedule in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent virtual clients")
  in
  let rate_arg =
    Arg.(value & opt float 0.0 & info [ "rate" ] ~docv:"R"
           ~doc:"Total offered requests per second across all clients \
                 (open loop); 0 runs closed-loop")
  in
  let arrival_arg =
    Arg.(value & opt (some string) None & info [ "arrival" ] ~docv:"MODEL"
           ~doc:"closed | poisson | uniform (default: poisson when \
                 --rate is set, closed otherwise)")
  in
  let duration_arg =
    Arg.(value & opt float 5.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"How long to offer load")
  in
  let mix_arg =
    Arg.(value & opt string (Mix.to_string Mix.default)
         & info [ "mix" ] ~docv:"SPEC"
             ~doc:"Weighted request mix, e.g. \
                   analyze=4,run=2,explain=1,stats=1")
  in
  let churn_arg =
    Arg.(value & opt float 0.0 & info [ "churn" ] ~docv:"P"
           ~doc:"Per-request probability of dropping the connection and \
                 re-dialing before sending (connection churn)")
  in
  let load_seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Seed for all harness randomness: mix sampling, arrival \
                 gaps, churn — same seed, same schedule")
  in
  let scale_arg =
    Arg.(value & opt int 100 & info [ "scale" ] ~docv:"PCT"
           ~doc:"Workload size, percent of each workload's default")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Attach this queueing deadline to every request (the \
                 daemon answers timed_out past it)")
  in
  let build_dir_arg =
    Arg.(value & opt (some dir) None & info [ "build-dir" ] ~docv:"DIR"
           ~doc:"Tree the build mix term targets (required when the mix \
                 gives build a nonzero weight)")
  in
  let slo_arg =
    Arg.(value & opt (some float) None & info [ "slo-p99-ms" ] ~docv:"MS"
           ~doc:"Fail (exit 1) unless the ok-response p99 latency is at \
                 most $(docv)")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the gofree-load-v1 report into $(docv)")
  in
  let dry_run_arg =
    Arg.(value & opt ~vopt:(Some 16) (some int) None
         & info [ "dry-run" ] ~docv:"EVENTS"
             ~doc:"Do not connect: print the deterministic request \
                   schedule ($(docv) events per client, default 16) and \
                   exit")
  in
  let load socket clients rate arrival duration mix churn seed scale
      deadline_ms build_dir slo_p99_ms json dry_run =
    let fail msg =
      Printf.eprintf "gofreec: load: %s\n" msg;
      exit 1
    in
    let mix =
      match Mix.of_string mix with Ok m -> m | Error m -> fail ("--mix: " ^ m)
    in
    let per_client = H.per_client_rate ~clients rate in
    let arrival =
      match (arrival, rate > 0.0) with
      | (None | Some "closed"), false -> Schedule.Closed
      | None, true | Some "poisson", true -> Schedule.Poisson per_client
      | Some "uniform", true -> Schedule.Uniform per_client
      | Some ("poisson" | "uniform"), false ->
        fail "open-loop arrival needs --rate > 0"
      | Some "closed", true -> fail "--rate is meaningless closed-loop"
      | Some m, _ ->
        fail (Printf.sprintf "unknown arrival %S (closed | poisson | \
                              uniform)" m)
    in
    let cfg =
      {
        (H.default_config ~socket) with
        H.clients;
        arrival;
        duration_s = duration;
        mix;
        churn;
        seed;
        scale;
        deadline_ms;
        build_dir;
        slo_p99_ms;
      }
    in
    let emit doc =
      (* self-check: the report must pass the registry gate it is
         validated against downstream *)
      (match Gofree_obs.Schema.check Gofree_obs.Schema.Load doc with
      | Ok () -> ()
      | Error m -> fail ("internal: report failed schema check: " ^ m));
      (match json with Some path -> write_json path doc | None -> ());
      print_string (Json.to_string_pretty doc)
    in
    match dry_run with
    | Some events -> begin
      match H.dry_run cfg ~events with
      | Ok doc -> emit doc
      | Error m -> fail m
    end
    | None -> begin
      match H.run cfg with
      | Error m -> fail m
      | Ok doc ->
        emit doc;
        let get path leaf =
          match Json.member path doc with
          | Some o -> ( try Some (Json.get leaf o) with _ -> None)
          | None -> None
        in
        let int_of path leaf =
          match get path leaf with Some (Json.Int n) -> n | _ -> 0
        in
        Printf.eprintf
          "gofreec load: offered %d | ok %d | shed %d | timed_out %d | \
           errors %d | dropped %d\n"
          (int_of "offered" "requests")
          (int_of "achieved" "ok") (int_of "achieved" "shed")
          (int_of "achieved" "timed_out")
          (int_of "achieved" "errors")
          (int_of "achieved" "dropped");
        (match H.report_latency_summary doc with
        | Some s ->
          Printf.eprintf "gofreec load: %s\n"
            (Gofree_stats.Stats.latency_summary_line s)
        | None -> ());
        if not (H.slo_ok doc) then begin
          (match get "slo" "violations" with
          | Some (Json.List vs) ->
            List.iter
              (fun v ->
                match v with
                | Json.Str m -> Printf.eprintf "gofreec load: SLO: %s\n" m
                | _ -> ())
              vs
          | _ -> ());
          exit 1
        end
    end
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Offer a mixed, seeded workload to a serving daemon; report \
             latency/throughput (gofree-load-v1) and gate on SLOs")
    Term.(
      const load $ socket_arg $ clients_arg $ rate_arg $ arrival_arg
      $ duration_arg $ mix_arg $ churn_arg $ load_seed_arg $ scale_arg
      $ deadline_arg $ build_dir_arg $ slo_arg $ json_arg $ dry_run_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "gofreec" ~version:"1.0.0"
       ~doc:"GoFree reproduction: compiler-inserted freeing for MiniGo")
    [
      run_cmd; workload_cmd; analyze_cmd; instrument_cmd; disasm_cmd;
      compare_cmd; build_cmd; serve_cmd; client_cmd; load_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
